open Velum_isa

type kind = Interp | Block

let kind_of_string = function
  | "interp" -> Some Interp
  | "block" -> Some Block
  | _ -> None

let kind_name = function Interp -> "interp" | Block -> "block"

type t = {
  kind : kind;
  step_n : Cpu.state -> Cpu.ctx -> fuel:int -> int * Cpu.stop;
  cache : Trans_cache.t option;
}

let interp =
  { kind = Interp; step_n = (fun s ctx ~fuel -> Cpu.run s ctx ~budget:fuel); cache = None }

let page_mask = Int64.of_int (Arch.page_size - 1)
let align_mask = Int64.of_int (Arch.instr_bytes - 1)
let instr_bytes64 = Int64.of_int Arch.instr_bytes

(* Per-hart window state, keyed by [Cpu.state] identity so it survives
   across [step_n] calls.  Persistence is sound because nothing here is
   trusted on re-entry: the fetch window is re-validated against the
   micro-TLB generation (and vpn/mode), block reuse re-checks
   [valid]/regime/containment, and a stale [pending] edge can at worst
   patch a chain that [follow] will refuse later.  Without a micro-TLB
   there is no generation to consult, so the state is reset cold on
   every call (the strict static window rules then apply). *)
type wstate = {
  mutable w_dtlb : Dtlb.t option;
      (* the micro-TLB the fields below were computed against; a
         different (or absent) one makes generations incomparable *)
  mutable fresh : bool;
  mutable cur_vpn : int64;
  mutable cur_frame : int64;
  mutable cur_user : bool;
  mutable cur_gen : int;
  mutable cur_block : Trans_cache.block option;
  mutable pending : (Trans_cache.block * bool) option;
  (* Victim cache of recently displaced fetch windows.  A slot holds the
     same facts as the primary window fields (vpn, user, frame, and the
     micro-TLB generation they were certified under); it is usable
     exactly while the current generation equals the recorded one — the
     same certificate the primary window relies on.  This is what makes
     page ping-pong (user code <-> trap vector on every syscall) cheap:
     re-entering a recently-left page skips the whole translate chain
     when nothing in the TLB moved. *)
  v_vpns : int64 array;
  v_frames : int64 array;
  v_users : bool array;
  v_gens : int array;
  mutable v_next : int;
}

let num_victims = 8

let new_wstate () =
  {
    w_dtlb = None;
    fresh = false;
    cur_vpn = 0L;
    cur_frame = -1L;
    cur_user = false;
    cur_gen = 0;
    cur_block = None;
    pending = None;
    v_vpns = Array.make num_victims (-1L);
    v_frames = Array.make num_victims (-1L);
    v_users = Array.make num_victims false;
    v_gens = Array.make num_victims 0;
    v_next = 0;
  }

(* Save the primary window into the victim ring before it is replaced. *)
let stash_window w =
  if w.fresh then begin
    let k = w.v_next in
    w.v_vpns.(k) <- w.cur_vpn;
    w.v_frames.(k) <- w.cur_frame;
    w.v_users.(k) <- w.cur_user;
    w.v_gens.(k) <- w.cur_gen;
    w.v_next <- (k + 1) land (num_victims - 1)
  end

let clear_victims w =
  Array.fill w.v_vpns 0 num_victims (-1L);
  w.v_next <- 0

(* The block engine's driver loop.  It mirrors [Cpu.run] stop for stop
   and cycle for cycle; the only liberty it takes is {e skipping}
   translations the interpreter would perform as guaranteed zero-cycle
   TLB hits.

   Fetch side — the reuse window.  After a fetch translation of page
   [vpn] succeeds we record the mode and the backing TLB's generation
   ({!Dtlb.generation}).  While the PC stays in [vpn], the mode is
   unchanged and the generation is unchanged (no TLB entry flushed,
   evicted or replaced — which also implies [satp] is unchanged, since
   every [satp] write flushes), a fetch translation would return the
   same frame as a zero-cycle hit, so it is skipped.  Loads and stores
   do not collapse the window (cf. the relaxed
   [Block.preserves_translation]): an access served by the micro-TLB or
   by a plain TLB hit leaves the generation alone, and one that walks
   and thereby evicts a TLB entry bumps the generation, collapsing the
   window exactly when required.  Without a micro-TLB wired in the ctx
   there is no generation to consult, and the window only survives
   instructions that are statically incapable of disturbing translation
   ([Block.preserves_translation_unconditionally]).

   Data side — the micro-TLB.  [ctx.translate] is wrapped so load/store
   translations are first served from {!Dtlb}; a hit replicates exactly
   what the real translate would have done (same pa, zero cycles, one
   [Tlb.note_hit]) without the full MMU/nested/shadow call chain.

   Dispatch — block chaining.  When the last instruction of a block
   retires, the engine remembers the (block, taken?) edge; resolving the
   next block first chases that edge ({!Trans_cache.follow}), then falls
   back to the hashtable and patches the edge for next time
   ({!Trans_cache.set_succ}).  Edges are predictions: following one
   re-checks validity, regime and span containment, so invalidation
   (which also severs incoming edges) can never lead to executing a
   stale successor.

   Execution — the in-block inner loop.  Once a block is resolved,
   instructions run back to back (including in-block branches) without
   going around the dispatch loop, as long as each retired instruction
   is provably equivalent to re-dispatching: the block is still valid
   (a store into its own page clears [valid] via the write listener),
   the window facts still hold (generation and mode under a micro-TLB,
   static class otherwise), fuel remains, and — outside deprivileged
   mode, where the interpreter checks interrupts before every
   instruction — the instruction class cannot affect interrupt state
   (no CSR, MMIO or port access; [now]/[ext_irq] are constant within a
   [step_n] call, so nothing else can make an interrupt pending). *)
let block_step cache states s ctx ~fuel =
  let cost = ctx.Cpu.cost in
  (* hoisted cost-model constants: no per-iteration field reads *)
  let trap_enter = cost.Cost_model.trap_enter in
  let base_instr = cost.Cost_model.base_instr in
  let deprivileged = Cpu.is_deprivileged ctx in
  let dtlb = ctx.Cpu.dtlb in
  if s.Cpu.halted then (0, Cpu.Halted)
  else begin
    let w =
      match List.assq_opt s !states with
      | Some w -> w
      | None ->
          let w = new_wstate () in
          states := (s, w) :: !states;
          w
    in
    (* window state persists across calls only while the same micro-TLB
       keeps generations comparable; otherwise start cold *)
    (match (w.w_dtlb, dtlb) with
    | Some a, Some b when a == b -> ()
    | _ ->
        w.w_dtlb <- dtlb;
        w.fresh <- false;
        w.cur_frame <- -1L;
        w.cur_block <- None;
        w.pending <- None;
        clear_victims w);
    let consumed = ref 0 in
    let result = ref None in
    let collapse_window () =
      w.fresh <- false;
      w.cur_block <- None;
      w.pending <- None
    in
    (* serve data translations from the micro-TLB when one is wired *)
    let ctx =
      match dtlb with
      | None -> ctx
      | Some d ->
          let translate ~access ~user va =
            match access with
            | Arch.Fetch -> ctx.Cpu.translate ~access ~user va
            | Arch.Load | Arch.Store -> (
                match Dtlb.lookup d ~access ~user va with
                | Some pa -> Ok { Cpu.pa; mmio = false; xlate_cycles = 0 }
                | None ->
                    let r = ctx.Cpu.translate ~access ~user va in
                    (match r with
                    | Ok x when not x.Cpu.mmio ->
                        Dtlb.fill d ~access ~user ~va ~pa:x.Cpu.pa
                    | _ -> ());
                    r)
          in
          { ctx with Cpu.translate }
    in
    let finish step =
      match step with
      | Cpu.Retired c -> consumed := !consumed + c
      | Cpu.Stop_exec (r, c) ->
          consumed := !consumed + c;
          result := Some r
    in
    while !result = None do
      if !consumed >= fuel then result := Some Cpu.Budget
      else if s.Cpu.halted then result := Some Cpu.Halted
      else begin
        (if not deprivileged then
           match
             Cpu.interrupt_pending s ~now:(ctx.Cpu.now ()) ~ext_irq:(ctx.Cpu.ext_irq ())
           with
           | Some cause ->
               Cpu.deliver_trap s ~cause ~tval:0L;
               consumed := !consumed + trap_enter;
               (* asynchronous flow hijack: never chain across it (the
                  window itself is re-validated below) *)
               w.pending <- None
           | None -> ());
        if s.Cpu.waiting then result := Some Cpu.Waiting
        else begin
          let pc = s.Cpu.pc in
          let user = s.Cpu.mode = Arch.User in
          (* 1. A fetch translation for [pc]: free inside the reuse
             window, a real (interpreter-identical) prelude outside. *)
          let win_ok =
            w.fresh
            && Int64.shift_right_logical pc Arch.page_shift = w.cur_vpn
            && user = w.cur_user
            && (match dtlb with
               | Some d -> Dtlb.generation d = w.cur_gen
               | None -> true)
            && Int64.logand pc align_mask = 0L
          in
          (* adopt a fresh window for [vpn] -> [frame], stashing the
             displaced one in the victim ring and keeping the decoded
             block when the refetch landed in the same frame and
             regime: a collapsed window then costs one translate (or a
             victim probe), not a hashtable round trip *)
          let adopt_window ~vpn ~frame =
            stash_window w;
            w.cur_vpn <- vpn;
            w.cur_user <- user;
            (match dtlb with
            | Some d -> w.cur_gen <- Dtlb.generation d
            | None -> ());
            w.fresh <- true;
            (if frame <> w.cur_frame then w.cur_block <- None
             else
               match w.cur_block with
               | Some b
                 when not
                        (Trans_cache.same_regime_key b
                           (Trans_cache.key ~ppn:frame ~off:0 ~user
                              ~paging:(Arch.satp_enabled (Cpu.get_csr s Arch.Satp))))
                 ->
                   w.cur_block <- None
               | _ -> ());
            w.cur_frame <- frame
          in
          let xl =
            if win_ok then Some 0
            else begin
              let vpn = Int64.shift_right_logical pc Arch.page_shift in
              (* A victim window for this (vpn, mode) whose generation
                 is still current carries the same certificate the
                 primary window does: the fetch translation would be a
                 zero-cycle TLB hit, so it is skipped outright. *)
              let victim =
                match dtlb with
                | Some d when Int64.logand pc align_mask = 0L ->
                    let gen = Dtlb.generation d in
                    let rec probe k =
                      if k >= num_victims then -1
                      else if
                        w.v_vpns.(k) = vpn && w.v_users.(k) = user
                        && w.v_gens.(k) = gen
                      then k
                      else probe (k + 1)
                    in
                    probe 0
                | _ -> -1
              in
              if victim >= 0 then begin
                adopt_window ~vpn ~frame:w.v_frames.(victim);
                Some 0
              end
              else
                match Cpu.fetch_prelude s ctx with
                | Error step ->
                    finish step;
                    collapse_window ();
                    None
                | Ok { Cpu.pa; xlate_cycles; _ } ->
                    adopt_window ~vpn
                      ~frame:(Int64.shift_right_logical pa Arch.page_shift);
                    Some xlate_cycles
            end
          in
          match xl with
          | None -> ()
          | Some xl -> (
              let off = Int64.to_int (Int64.logand pc page_mask) in
              (* 2. A decoded block covering [off] in the code frame:
                 the current block when the PC is still inside it
                 (sequential flow and in-block branches), else the
                 chained successor, else a cache lookup (patching the
                 chain), else decode-and-insert. *)
              let blk =
                match w.cur_block with
                | Some b
                  when b.Trans_cache.valid
                       && off >= b.Trans_cache.start_off
                       && off
                          < b.Trans_cache.start_off
                            + (Arch.instr_bytes * Array.length b.Trans_cache.insns) ->
                    Some b
                | _ -> (
                    let key =
                      Trans_cache.key ~ppn:w.cur_frame ~off ~user
                        ~paging:(Arch.satp_enabled (Cpu.get_csr s Arch.Satp))
                    in
                    let chained =
                      match w.pending with
                      | Some (p, taken) ->
                          Trans_cache.follow cache ~from:p ~taken ~key ~off
                      | None -> None
                    in
                    match chained with
                    | Some b ->
                        w.cur_block <- Some b;
                        Some b
                    | None -> (
                        let resolved =
                          match Trans_cache.find cache key with
                          | Some b -> Some b
                          | None -> (
                              let base =
                                Int64.logor
                                  (Int64.shift_left w.cur_frame Arch.page_shift)
                                  (Int64.of_int off)
                              in
                              let read_word i =
                                ctx.Cpu.read_ram
                                  (Int64.add base (Int64.of_int (i * Arch.instr_bytes)))
                                  Instr.W64
                              in
                              let max_instrs = (Arch.page_size - off) / Arch.instr_bytes in
                              let d = Block.decode_span ~read_word ~max_instrs in
                              match Array.length d.Block.insns with
                              | 0 ->
                                  (* Undecodable first word: the
                                     interpreter's illegal-instruction
                                     outcome (which charges no
                                     translation cycles either). *)
                                  finish
                                    (Cpu.trap_or_exit s ctx Arch.Illegal_instruction
                                       (read_word 0) base_instr);
                                  collapse_window ();
                                  None
                              | _ ->
                                  Some
                                    (Trans_cache.insert cache ~key ~ppn:w.cur_frame
                                       ~insns:d.Block.insns ~classes:d.Block.classes
                                       ~start_off:off))
                        in
                        (match (resolved, w.pending) with
                        | Some b, Some (p, taken) ->
                            Trans_cache.set_succ cache ~from:p ~taken ~target:b
                        | _ -> ());
                        (match resolved with
                        | Some b -> w.cur_block <- Some b
                        | None -> ());
                        resolved))
              in
              w.pending <- None;
              match blk with
              | None -> ()
              | Some b ->
                  (* 2b. The trace tier (deprivileged only).  A live
                     superblock trace installed at this block, built
                     against this very cost model, absorbs the dispatch:
                     execution enters the trace at the op matching
                     [off] and stays inside it across block boundaries
                     and loop back-edges.  No further guards are needed
                     at entry — the window checks above certify exactly
                     the facts the trace's eliminated interior guards
                     rely on (see {!Trace_ir}).  A [Bail] means zero
                     progress was made; fall through to the plain block
                     path in the same dispatch so progress is always
                     guaranteed. *)
                  let ran_trace =
                    deprivileged
                    && (match (b.Trans_cache.trace_at, dtlb) with
                       | Some tr, Some d
                         when !(tr.Trans_cache.t_prog.Trace_ir.live)
                              && tr.Trans_cache.t_cost == cost -> (
                           let start =
                             (off - b.Trans_cache.start_off) / Arch.instr_bytes
                           in
                           let page_base =
                             Int64.shift_left w.cur_vpn Arch.page_shift
                           in
                           match
                             Trace_ir.exec tr.Trans_cache.t_prog ~start ~s ~dtlb:d
                               ~read_ram:ctx.Cpu.read_ram
                               ~write_ram:ctx.Cpu.write_ram ~user ~page_base
                               ~fuel_left:(fuel - !consumed) ~xl
                           with
                           | Trace_ir.Bail ->
                               Trans_cache.note_trace_side_exit cache;
                               false
                           | Trace_ir.Fall { cycles; early } ->
                               consumed := !consumed + cycles;
                               Trans_cache.note_trace_follow cache;
                               if early then Trans_cache.note_trace_side_exit cache;
                               true
                           | Trace_ir.Stop { cycles; stop } ->
                               consumed := !consumed + cycles;
                               Trans_cache.note_trace_follow cache;
                               result := Some stop;
                               true)
                       | _ ->
                           (* hotness accounting: promotion triggers on
                              dispatch count, which also sees in-block
                              loops that never cross a chain edge *)
                           (if dtlb <> None then begin
                              b.Trans_cache.heat <- b.Trans_cache.heat + 1;
                              if b.Trans_cache.heat >= Trans_cache.promote_threshold
                              then begin
                                b.Trans_cache.heat <- 0;
                                ignore (Trans_cache.try_promote cache ~head:b ~cost)
                              end
                            end);
                           false)
                  in
                  if ran_trace then ()
                  else
                  (* 3. The inner loop: run instructions back to back
                     inside the block while that is provably equivalent
                     to re-dispatching (see the header comment). *)
                  let insns = b.Trans_cache.insns in
                  let len = Array.length insns in
                  let start_off = b.Trans_cache.start_off in
                  let idx = ref ((off - start_off) / Arch.instr_bytes) in
                  let xl = ref xl in
                  let inner = ref true in
                  while !inner do
                    let insn = insns.(!idx) in
                    let pc_before = s.Cpu.pc in
                    match Cpu.exec_insn s ctx insn with
                    | Cpu.Retired c ->
                        s.Cpu.instret <- Int64.add s.Cpu.instret 1L;
                        consumed := !consumed + c + !xl;
                        xl := 0;
                        (match dtlb with
                        | Some _ -> ()
                        | None ->
                            if not (Block.preserves_translation_unconditionally insn)
                            then w.fresh <- false);
                        if !idx = len - 1 then begin
                          w.pending <-
                            Some (b, Int64.sub s.Cpu.pc pc_before <> instr_bytes64);
                          inner := false
                        end
                        else begin
                          (* A non-last instruction is never a
                             terminator ([decode_span] would have ended
                             the block), so it is one of
                             Nop/Alu/Alui/Lui/Load/Store: it advanced
                             the PC by exactly one instruction and —
                             deprivileged, where faults and sensitive
                             ops exit instead of trapping — cannot have
                             changed the mode.  Continuation therefore
                             needs no PC or containment re-check: just
                             fuel, the generation after a memory access
                             (its walk may have evicted the fetch
                             entry) and block validity after a store
                             (it may have hit this very code page). *)
                          let continue_ =
                            !consumed < fuel
                            &&
                            if deprivileged then
                              match dtlb with
                              | Some d -> (
                                  match insn with
                                  | Instr.Nop | Instr.Alu _ | Instr.Alui _
                                  | Instr.Lui _ ->
                                      true
                                  | Instr.Load _ -> Dtlb.generation d = w.cur_gen
                                  | Instr.Store _ ->
                                      Dtlb.generation d = w.cur_gen
                                      && b.Trans_cache.valid
                                  | _ -> false)
                              | None ->
                                  Block.preserves_translation_unconditionally insn
                            else
                              (* native mode: must also be
                                 interrupt-neutral (no CSR, MMIO or
                                 port side effects), which Load/Store
                                 are not *)
                              Block.preserves_translation_unconditionally insn
                          in
                          if continue_ then incr idx else inner := false
                        end
                    | Cpu.Stop_exec (r, c) ->
                        consumed := !consumed + c + !xl;
                        xl := 0;
                        result := Some r;
                        inner := false
                  done)
        end
      end
    done;
    let stop = match !result with Some r -> r | None -> assert false in
    (!consumed, stop)
  end

let block ?(cache_capacity = 1024) () =
  let cache = Trans_cache.create ~capacity:cache_capacity () in
  let states = ref [] in
  { kind = Block; step_n = block_step cache states; cache = Some cache }

let of_kind ?cache_capacity = function
  | Interp -> interp
  | Block -> block ?cache_capacity ()
