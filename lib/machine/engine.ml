open Velum_isa

type kind = Interp | Block

let kind_of_string = function
  | "interp" -> Some Interp
  | "block" -> Some Block
  | _ -> None

let kind_name = function Interp -> "interp" | Block -> "block"

type t = {
  kind : kind;
  step_n : Cpu.state -> Cpu.ctx -> fuel:int -> int * Cpu.stop;
  cache : Trans_cache.t option;
}

let interp =
  { kind = Interp; step_n = (fun s ctx ~fuel -> Cpu.run s ctx ~budget:fuel); cache = None }

let page_mask = Int64.of_int (Arch.page_size - 1)
let align_mask = Int64.of_int (Arch.instr_bytes - 1)

(* The block engine's driver loop.  It mirrors [Cpu.run] stop for stop
   and cycle for cycle; the only liberty it takes is {e skipping} fetch
   translations the interpreter would perform as guaranteed zero-cycle
   TLB hits.  The reuse window argument: after a fetch translation of
   page [vpn] succeeds, as long as every retired instruction since
   satisfies [Block.preserves_translation] (no memory access, no trap,
   no CSR/satp/flush side effect) and no interrupt was delivered (mode
   change), neither the TLB contents nor the inputs to translation can
   have changed — so a subsequent fetch from [vpn] would hit and charge
   nothing.  Anything else collapses the window and the next
   instruction pays a real [fetch_prelude], exactly like the
   interpreter. *)
let block_step cache s ctx ~fuel =
  let cost = ctx.Cpu.cost in
  let deprivileged = Cpu.is_deprivileged ctx in
  if s.Cpu.halted then (0, Cpu.Halted)
  else begin
    let consumed = ref 0 in
    let result = ref None in
    let fresh = ref false in
    let cur_vpn = ref 0L in
    let cur_frame = ref 0L in
    let cur_block : Trans_cache.block option ref = ref None in
    let collapse_window () =
      fresh := false;
      cur_block := None
    in
    let finish step =
      match step with
      | Cpu.Retired c -> consumed := !consumed + c
      | Cpu.Stop_exec (r, c) ->
          consumed := !consumed + c;
          result := Some r
    in
    while !result = None do
      if !consumed >= fuel then result := Some Cpu.Budget
      else if s.Cpu.halted then result := Some Cpu.Halted
      else begin
        (if not deprivileged then
           match
             Cpu.interrupt_pending s ~now:(ctx.Cpu.now ()) ~ext_irq:(ctx.Cpu.ext_irq ())
           with
           | Some cause ->
               Cpu.deliver_trap s ~cause ~tval:0L;
               consumed := !consumed + cost.Cost_model.trap_enter;
               collapse_window () (* trap entry changed the mode *)
           | None -> ());
        if s.Cpu.waiting then result := Some Cpu.Waiting
        else begin
          let pc = s.Cpu.pc in
          (* 1. A fetch translation for [pc]: free inside the reuse
             window, a real (interpreter-identical) prelude outside. *)
          let xl =
            if
              !fresh
              && Int64.shift_right_logical pc Arch.page_shift = !cur_vpn
              && Int64.logand pc align_mask = 0L
            then Some 0
            else
              match Cpu.fetch_prelude s ctx with
              | Error step ->
                  finish step;
                  collapse_window ();
                  None
              | Ok { Cpu.pa; xlate_cycles; _ } ->
                  cur_vpn := Int64.shift_right_logical pc Arch.page_shift;
                  cur_frame := Int64.shift_right_logical pa Arch.page_shift;
                  fresh := true;
                  cur_block := None;
                  Some xlate_cycles
          in
          match xl with
          | None -> ()
          | Some xl -> (
              let off = Int64.to_int (Int64.logand pc page_mask) in
              (* 2. A decoded block covering [off] in the code frame:
                 the current block when the PC is still inside it
                 (sequential flow and in-block branches), else a cache
                 lookup, else decode-and-insert. *)
              let blk =
                match !cur_block with
                | Some b
                  when b.Trans_cache.valid
                       && off >= b.Trans_cache.start_off
                       && off
                          < b.Trans_cache.start_off
                            + (Arch.instr_bytes * Array.length b.Trans_cache.insns) ->
                    Some b
                | _ -> (
                    let key =
                      Trans_cache.key ~ppn:!cur_frame ~off
                        ~user:(s.Cpu.mode = Arch.User)
                        ~paging:(Arch.satp_enabled (Cpu.get_csr s Arch.Satp))
                    in
                    match Trans_cache.find cache key with
                    | Some b ->
                        cur_block := Some b;
                        Some b
                    | None -> (
                        let base =
                          Int64.logor
                            (Int64.shift_left !cur_frame Arch.page_shift)
                            (Int64.of_int off)
                        in
                        let read_word i =
                          ctx.Cpu.read_ram
                            (Int64.add base (Int64.of_int (i * Arch.instr_bytes)))
                            Instr.W64
                        in
                        let max_instrs = (Arch.page_size - off) / Arch.instr_bytes in
                        let d = Block.decode_span ~read_word ~max_instrs in
                        match Array.length d.Block.insns with
                        | 0 ->
                            (* Undecodable first word: the interpreter's
                               illegal-instruction outcome (which charges
                               no translation cycles either). *)
                            finish
                              (Cpu.trap_or_exit s ctx Arch.Illegal_instruction
                                 (read_word 0) cost.Cost_model.base_instr);
                            collapse_window ();
                            None
                        | _ ->
                            let b =
                              Trans_cache.insert cache ~key ~ppn:!cur_frame
                                ~insns:d.Block.insns ~classes:d.Block.classes
                                ~start_off:off
                            in
                            cur_block := Some b;
                            Some b))
              in
              match blk with
              | None -> ()
              | Some b -> (
                  let idx = (off - b.Trans_cache.start_off) / Arch.instr_bytes in
                  let insn = b.Trans_cache.insns.(idx) in
                  match Cpu.exec_insn s ctx insn with
                  | Cpu.Retired c ->
                      s.Cpu.instret <- Int64.add s.Cpu.instret 1L;
                      consumed := !consumed + c + xl;
                      if not (Block.preserves_translation insn) then collapse_window ()
                  | Cpu.Stop_exec (r, c) ->
                      consumed := !consumed + c + xl;
                      result := Some r))
        end
      end
    done;
    let stop = match !result with Some r -> r | None -> assert false in
    (!consumed, stop)
  end

let block ?(cache_capacity = 1024) () =
  let cache = Trans_cache.create ~capacity:cache_capacity () in
  { kind = Block; step_n = block_step cache; cache = Some cache }

let of_kind ?cache_capacity = function
  | Interp -> interp
  | Block -> block ?cache_capacity ()
