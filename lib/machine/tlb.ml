open Velum_isa

type entry = {
  vpn : int64;
  ppn : int64;
  perms : Pte.perms;
  dirty_ok : bool;
  mmio : bool;
  superpage : bool;
}

(* Two fully-associative banks with round-robin replacement: one for
   4 KiB translations keyed by vpn, one for 2 MiB translations keyed by
   vpn >> 9.  Real TLBs split similarly; determinism is what matters
   here. *)
type bank = {
  slots : entry option array;
  index : (int64, int) Hashtbl.t;
  mutable victim : int;
}

type t = {
  small : bank;
  large : bank;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable generation : int;
      (* bumped whenever an entry leaves or changes (flush, capacity
         eviction, same-vpn replacement) — never on a fill into an empty
         slot.  A consumer that cached "the TLB holds entry E" may keep
         trusting it exactly while the generation is unchanged. *)
}

let make_bank size =
  { slots = Array.make size None; index = Hashtbl.create size; victim = 0 }

let create ~size =
  if size <= 0 then invalid_arg "Tlb.create: size must be positive";
  (* the superpage bank is a quarter of the 4K bank, at least 4 entries *)
  {
    small = make_bank size;
    large = make_bank (max 4 (size / 4));
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
    generation = 0;
  }

let size t = Array.length t.small.slots

let super_key vpn = Int64.shift_right_logical vpn (Arch.vpn_bits)

let bank_lookup b key =
  match Hashtbl.find_opt b.index key with Some slot -> b.slots.(slot) | None -> None

let lookup t ~vpn =
  match bank_lookup t.small vpn with
  | Some _ as hit -> hit
  | None -> bank_lookup t.large (super_key vpn)

(* Any removal of a live entry invalidates what consumers may have
   cached about the TLB's contents, so it both counts as an eviction and
   bumps the generation. *)
let evict_slot t b key_of slot =
  match b.slots.(slot) with
  | Some e ->
      Hashtbl.remove b.index (key_of e.vpn);
      b.slots.(slot) <- None;
      t.evictions <- t.evictions + 1;
      t.generation <- t.generation + 1
  | None -> ()

let bank_insert t b key_of e =
  let key = key_of e.vpn in
  let slot =
    match Hashtbl.find_opt b.index key with
    | Some s -> s
    | None ->
        let s = b.victim in
        b.victim <- (b.victim + 1) mod Array.length b.slots;
        evict_slot t b key_of s;
        s
  in
  evict_slot t b key_of slot;
  b.slots.(slot) <- Some e;
  Hashtbl.replace b.index key slot

let insert t e =
  if e.superpage then bank_insert t t.large super_key e
  else bank_insert t t.small (fun v -> v) e

let flush t =
  List.iter
    (fun b ->
      Array.fill b.slots 0 (Array.length b.slots) None;
      Hashtbl.reset b.index)
    [ t.small; t.large ];
  t.flushes <- t.flushes + 1;
  t.generation <- t.generation + 1

let flush_vpn t vpn =
  (match Hashtbl.find_opt t.small.index vpn with
  | Some slot -> evict_slot t t.small (fun v -> v) slot
  | None -> ());
  match Hashtbl.find_opt t.large.index (super_key vpn) with
  | Some slot -> evict_slot t t.large super_key slot
  | None -> ()

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let flushes t = t.flushes
let generation t = t.generation
let note_hit t = t.hits <- t.hits + 1
let note_miss t = t.misses <- t.misses + 1

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.flushes <- 0
