(** Translation lookaside buffer.

    Caches virtual-page → machine-frame translations with permission and
    dirty state.  Fully associative with round-robin replacement, so
    behaviour is deterministic.  A store through an entry installed
    without the dirty bit misses, forcing a re-walk that sets the page
    dirty — matching how hardware keeps D bits precise. *)

open Velum_isa

type entry = {
  vpn : int64;  (** virtual page number (4 KiB granule); for a superpage
                    entry this is the first vpn the superpage covers *)
  ppn : int64;  (** machine frame (host physical in a VM context); for a
                    superpage entry, the 512-aligned base frame *)
  perms : Pte.perms;  (** effective permissions *)
  dirty_ok : bool;  (** stores may hit without a re-walk *)
  mmio : bool;  (** translation targets an MMIO page; ppn is then the
                    guest-physical page number of the device page *)
  superpage : bool;  (** one entry covers a whole 2 MiB region — the TLB
                         reach benefit of large pages *)
}

type t

val create : size:int -> t
(** @raise Invalid_argument if [size <= 0]. *)

val size : t -> int

val lookup : t -> vpn:int64 -> entry option
(** [lookup t ~vpn] — 4 KiB entries are consulted first, then superpage
    entries covering [vpn].  A hit does not inspect permissions; the CPU
    checks them against the access. *)

val insert : t -> entry -> unit
(** [insert t e] fills an entry, evicting round-robin when full and
    replacing any existing entry for the same VPN. *)

val flush : t -> unit
val flush_vpn : t -> int64 -> unit

val hits : t -> int
val misses : t -> int
(** Callers report hits/misses via {!note_hit} / {!note_miss}; the TLB
    itself cannot tell a permission-upgrade re-walk from a cold miss. *)

val evictions : t -> int
(** Live entries removed individually — capacity (round-robin) victims,
    same-VPN replacements, and targeted {!flush_vpn} shootdowns.  Full
    {!flush}es are counted separately. *)

val flushes : t -> int
(** Number of full {!flush} calls. *)

val generation : t -> int
(** Monotonic counter bumped whenever any live entry is removed or
    replaced ({!flush}, {!flush_vpn}, eviction, same-VPN refill).  Fills
    into empty slots do not bump it, so a consumer that observed an entry
    present may keep assuming it is present — unchanged — for as long as
    the generation stays equal. *)

val note_hit : t -> unit
val note_miss : t -> unit
val reset_stats : t -> unit
(** Resets hit/miss/eviction/flush counters; the generation is preserved
    (it is a correctness token, not a statistic). *)
