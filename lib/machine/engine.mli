(** Pluggable execution engines.

    An engine is a strategy for advancing a hart: it owns the
    fetch/decode/dispatch loop while delegating instruction semantics,
    trap delivery and cost accounting to the shared primitives in
    {!Cpu}.  Two engines ship:

    - {!interp} — the per-instruction reference interpreter
      ({!Cpu.run}).
    - {!block} — a decoded-block translation cache ({!Trans_cache}):
      straight-line runs of instructions are decoded once per (physical
      frame, offset, mode, paging) key and replayed from the cache,
      skipping the per-instruction translate/fetch/decode work.

    {b Equivalence contract.}  Every engine must be observationally
    identical to {!interp}: same architectural state after every stop,
    same stop/exit sequence, same [instret], and the {e same simulated
    cycle counts} — an engine buys wall-clock speed, never simulated
    time.  The block engine preserves cycle accounting by charging the
    block-entry fetch translation exactly where the interpreter would,
    and re-translating after any instruction that could disturb a
    translation ({!Velum_isa.Block.preserves_translation}); in the runs
    it skips, the interpreter's own translation is a guaranteed TLB hit
    costing zero cycles.

    Engines hold no architectural state: the cache is rebuilt on demand
    and invalidated by {!Phys_mem} write listeners, so snapshots and
    migration copy {!Cpu.state} only (see {!Cpu.copy_state}). *)

type kind = Interp | Block

val kind_of_string : string -> kind option
(** ["interp"] or ["block"]. *)

val kind_name : kind -> string

type t = {
  kind : kind;
  step_n : Cpu.state -> Cpu.ctx -> fuel:int -> int * Cpu.stop;
      (** Run until [fuel] simulated cycles are consumed or the hart
          stops; the drop-in replacement for {!Cpu.run}. *)
  cache : Trans_cache.t option;
      (** The block engine's cache, exposed so embedders can wire
          invalidation (memory-write listeners, revocation hooks) and
          read the counters. *)
}

val interp : t
(** Stateless; a single shared instance. *)

val block : ?cache_capacity:int -> unit -> t
(** A fresh block engine with a private cache.  The embedder must
    register a {!Phys_mem.add_write_listener} on the machine memory the
    hart executes from, forwarding frame writes to
    {!Trans_cache.invalidate_frame} — without it, self-modifying code
    would execute stale blocks. *)

val of_kind : ?cache_capacity:int -> kind -> t
