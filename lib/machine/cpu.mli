(** VR64 CPU interpreter.

    One interpreter serves two uses:

    - {b Native}: the hart executes privileged instructions directly,
      takes its own traps into [stvec], and talks to devices through the
      bus.  This is the bare-metal baseline for every experiment.
    - {b Deprivileged}: the hart belongs to a virtual machine.  Every
      privileged instruction, trap condition, MMIO touch and hypercall
      suspends execution and returns a {!vmexit} to the embedding
      hypervisor, which emulates against the vCPU's virtual state and
      resumes.  This is classic trap-and-emulate; VR64 traps on all
      sensitive instructions, so the construction is complete.

    {b Interrupt-control register.}  The [sie] CSR doubles as a status
    register: bit 63 is the global interrupt enable (GIE), bit 62 the
    previous GIE (SPIE), bit 61 the previous privilege mode (SPP,
    1 = supervisor); bits {!Velum_isa.Arch.irq_timer} and
    {!Velum_isa.Arch.irq_external} enable the two interrupt sources.
    Trap entry saves GIE→SPIE and mode→SPP and clears GIE; [sret]
    restores both.  [stimecmp] = 0 disarms the timer. *)

open Velum_isa

(** {1 Architectural state} *)

type state = {
  regs : int64 array;  (** 16 registers; keep index 0 zero via {!set_reg} *)
  mutable pc : int64;
  mutable mode : Arch.mode;
  csrs : int64 array;  (** indexed by {!Arch.csr_index} *)
  mutable halted : bool;
  mutable waiting : bool;  (** parked in [wfi] *)
  mutable instret : int64;  (** retired instruction count *)
}

val create_state : ?pc:int64 -> ?mode:Arch.mode -> unit -> state
(** Fresh state: zero registers and CSRs (mode defaults to
    [Supervisor]). *)

val copy_state : state -> state
(** Deep copy of the {e architectural} state — registers, PC, mode,
    CSRs, halt/wait flags and [instret].  This is, by construction, the
    complete engine-visible state: decoded blocks held by a translation
    cache ({!Trans_cache}) are a pure acceleration structure rebuilt on
    demand from memory, so they are never copied, snapshotted or
    migrated.  Snapshot/migration/replication consumers may rely on
    [copy_state] capturing everything an execution engine can observe. *)

val get_reg : state -> Arch.reg -> int64
val set_reg : state -> Arch.reg -> int64 -> unit
(** [set_reg s 0 v] is a no-op (r0 is hardwired to zero). *)

val get_csr : state -> Arch.csr -> int64
val set_csr : state -> Arch.csr -> int64 -> unit
(** Raw CSR cell access; no legality checks (the VMM uses this to edit
    virtual state). *)

(** {1 Status-register bit helpers} *)

val gie : state -> bool
val set_gie : state -> bool -> unit

val deliver_trap : state -> cause:Arch.cause -> tval:int64 -> unit
(** [deliver_trap s ~cause ~tval] performs architectural trap entry on
    [s]: saves [pc] to [sepc], writes [scause]/[stval], saves GIE/mode
    into SPIE/SPP, clears GIE, enters supervisor mode and jumps to
    [stvec].  Used natively by the interpreter and by the hypervisor to
    reflect faults and inject interrupts into a guest. *)

val apply_sret : state -> unit
(** [apply_sret s] performs the architectural [sret]: restores mode from
    SPP, GIE from SPIE, and jumps to [sepc]. *)

val timer_pending : state -> now:int64 -> bool
(** [timer_pending s ~now] — the timer comparator is armed and expired. *)

val interrupt_pending : state -> now:int64 -> ext_irq:bool -> Arch.cause option
(** [interrupt_pending s ~now ~ext_irq] is the highest-priority
    deliverable interrupt (external before timer), honouring GIE and the
    per-source enables. *)

val csr_read_native : state -> now:int64 -> ext_irq:bool -> Arch.csr -> int64
(** CSR read semantics on bare metal: [Time] returns [now], [Sip]
    synthesises pending bits, everything else reads the cell. *)

(** {1 Execution environment} *)

type xlate = {
  pa : int64;  (** machine physical address *)
  mmio : bool;  (** address belongs to the device window *)
  xlate_cycles : int;  (** cycles charged for translation (walks) *)
}

type xlate_fault = [ `Page | `Access ]

type env =
  | Native of {
      mmio_read : int64 -> Instr.width -> int64 option;
      mmio_write : int64 -> Instr.width -> int64 -> bool;
      port_in : int -> int64 option;
      port_out : int -> int64 -> bool;
    }  (** devices reachable directly *)
  | Deprivileged  (** all sensitive events exit to the hypervisor *)

type ctx = {
  translate : access:Arch.access -> user:bool -> int64 -> (xlate, xlate_fault) result;
  read_ram : int64 -> Instr.width -> int64;
  write_ram : int64 -> Instr.width -> int64 -> unit;
  flush_tlb : unit -> unit;
      (** invoked on native [sfence] and [satp] writes *)
  now : unit -> int64;  (** global cycle clock (drives [Time] and the
                            timer) *)
  ext_irq : unit -> bool;
  cost : Cost_model.t;
  env : env;
  dtlb : Dtlb.t option;
      (** data-side micro-TLB backed by this hart's TLB, used by block
          engines to serve repeated load/store translations and to
          certify fetch-translation reuse via {!Dtlb.generation}.  The
          interpreter itself never consults it (it stays the pure
          reference), so wiring it is always behaviour-preserving. *)
}

(** {1 VM exits} *)

type vmexit =
  | X_privileged of Instr.t
      (** a privileged instruction; PC has {e not} advanced *)
  | X_trap of { cause : Arch.cause; tval : int64 }
      (** a guest-level trap condition (ecall, ebreak, illegal,
          misaligned); the hypervisor normally reflects it with
          {!deliver_trap} *)
  | X_page_fault of { access : Arch.access; va : int64 }
      (** translation failed; the hypervisor classifies it (shadow miss,
          dirty tracking, ballooned page, or a real guest fault) *)
  | X_mmio_load of { rd : Arch.reg; pa : int64; width : Instr.width }
  | X_mmio_store of { pa : int64; width : Instr.width; value : int64 }
  | X_hypercall  (** arguments in r1-r5 per the ABI in {!Asm} *)

val pp_vmexit : Format.formatter -> vmexit -> unit

val advance_pc : state -> unit
(** [advance_pc s] skips the current instruction (+8); the hypervisor
    calls it after emulating an exiting instruction. *)

(** {1 Running} *)

type stop =
  | Budget  (** cycle budget exhausted (preemption point) *)
  | Halted  (** [halt] executed (native) or state already halted *)
  | Waiting  (** [wfi] with nothing pending (native); the embedder should
                 advance time *)
  | Exit of vmexit  (** deprivileged only *)

(** Outcome of one instruction: cycles consumed, and whether the hart
    must stop.  Native traps are folded into [Retired] (the trap has
    been delivered and execution continues at [stvec]). *)
type step = Retired of int | Stop_exec of stop * int

val run : state -> ctx -> budget:int -> int * stop
(** [run s ctx ~budget] executes instructions until the budget is
    consumed or something stops the hart; returns cycles consumed and the
    reason.  Interrupts are checked between instructions (native mode
    only — a hypervisor injects interrupts with {!deliver_trap} before
    resuming).  This is the reference interpreter; {!Engine.interp}
    wraps it, and every other engine must be observationally equivalent
    to it (state, exits, [instret] {e and} simulated cycles). *)

(** {1 Engine building blocks}

    The pieces [run] is made of, exported so alternative execution
    engines ({!Engine}) reproduce the reference semantics exactly
    instead of approximating them. *)

val is_deprivileged : ctx -> bool

val alu_cycles : Cost_model.t -> Instr.alu_op -> int
(** Extra cycles (beyond [base_instr]) an ALU sub-op costs — nonzero
    only for [Mul]/[Div]/[Rem]. *)

val eval_alu : Instr.alu_op -> int64 -> int64 -> int64
(** The pure ALU evaluation [run] uses, exported so trace compilers
    ({!Trace_ir}) reuse the reference semantics instead of copying
    them. *)

val alui_imm : Instr.alu_op -> int64 -> int64
(** Fold an ALU-immediate operand to the value {!eval_alu} must see:
    bitwise ops zero-extend the low 32 bits, shifts keep the low 6 bits,
    arithmetic/compares pass the sign-extended immediate through. *)

val eval_branch : Instr.branch_op -> int64 -> int64 -> bool

val trap_or_exit : state -> ctx -> Arch.cause -> int64 -> int -> step
(** [trap_or_exit s ctx cause tval cycles] — deliver a guest-level trap:
    natively via {!deliver_trap} (folded into [Retired], adding
    [trap_enter]); deprivileged as a [X_trap] exit. *)

val exec_insn : state -> ctx -> Instr.t -> step
(** Execute one already-decoded instruction at the current PC.  Does
    {e not} bump [instret] (the driver loop owns that) and charges no
    fetch-translation cycles. *)

val fetch_prelude : state -> ctx -> (xlate, step) result
(** The fetch-side checks preceding decode: PC alignment, instruction
    translation, and the MMIO-fetch rejection.  [Error step] is the
    already-delivered trap/exit outcome; [Ok x] charges nothing — the
    caller adds [x.xlate_cycles] to the executed instruction's cost
    exactly as the interpreter does. *)

val step_one : state -> ctx -> step
(** One full fetch/decode/execute step (including the [instret] bump on
    retirement) — the body of [run]'s loop, and the single-instruction
    fallback for block engines. *)
