(** Simulated physical (machine) memory.

    A flat byte array divided into 4 KiB frames.  On a hypervisor host
    this is the machine memory that the VMM's frame allocator hands out to
    guests; on a native machine it is simply RAM.  Addresses are byte
    physical addresses starting at zero. *)

type t

val create : frames:int -> t
(** [create ~frames] allocates [frames] zeroed 4 KiB frames.

    @raise Invalid_argument if [frames <= 0]. *)

val frames : t -> int
val size_bytes : t -> int

val in_range : t -> pa:int64 -> bytes:int -> bool
(** [in_range t ~pa ~bytes] — the access lies entirely inside RAM. *)

val read : t -> int64 -> Velum_isa.Instr.width -> int64
(** [read t pa w] reads little-endian, zero-extended.

    @raise Invalid_argument if out of range. *)

val write : t -> int64 -> Velum_isa.Instr.width -> int64 -> unit
(** [write t pa w v] writes the low bytes of [v] little-endian. *)

val load_bytes : t -> pa:int64 -> Bytes.t -> unit
(** [load_bytes t ~pa b] copies [b] into memory at [pa] (used to load
    boot images). *)

val frame_copy : t -> src_ppn:int64 -> dst_ppn:int64 -> unit
(** [frame_copy t ~src_ppn ~dst_ppn] copies one whole frame. *)

val frame_fill : t -> ppn:int64 -> char -> unit
(** [frame_fill t ~ppn c] fills a frame with byte [c]. *)

val frame_read : t -> ppn:int64 -> Bytes.t
(** [frame_read t ~ppn] is a fresh copy of the frame's 4096 bytes. *)

val frame_write : t -> ppn:int64 -> Bytes.t -> unit
(** [frame_write t ~ppn b] overwrites the frame with [b] (must be exactly
    4096 bytes). *)

val frame_hash : t -> ppn:int64 -> int64
(** [frame_hash t ~ppn] is the FNV-1a digest of the frame contents; used
    by content-based page sharing. *)

val frame_is_zero : t -> ppn:int64 -> bool
(** [frame_is_zero t ~ppn] — every byte of the frame is zero (zero-page
    detection for migration compression). *)

val frame_equal : t -> int64 -> int64 -> bool
(** [frame_equal t a b] compares two frames byte for byte. *)

val blit_between : src:t -> src_ppn:int64 -> dst:t -> dst_ppn:int64 -> unit
(** [blit_between ~src ~src_ppn ~dst ~dst_ppn] copies a frame across two
    memories (live migration between hosts). *)

(** {1 Write listeners}

    Every mutation — CPU stores, image loads, frame copies/fills,
    swap-ins, migration blits — reports the frames it touched to the
    registered listeners, {e after} the bytes changed.  This is the
    coherence backbone of the decoded-block translation cache: a
    listener invalidates cached blocks overlapping any byte range whose
    contents changed, which uniformly covers self-modifying code, DMA,
    COW copies, hypervisor swap-in and restore paths.  With no listeners
    registered the notification costs one list match on the store fast
    path. *)

val add_write_listener : t -> (ppn:int64 -> lo:int -> hi:int -> unit) -> int
(** Returns a handle for {!remove_write_listener}.  The listener runs
    synchronously on every write, once per touched frame, with the
    written byte subrange [\[lo, hi)] of that frame (whole-frame
    operations report [0, page_size)].  The range lets callers that
    cache derived views of code skip invalidation when a write lands in
    a disjoint part of the frame — e.g. a stack or data area sharing a
    page with code.  The listener must be cheap and must not write
    memory itself. *)

val remove_write_listener : t -> int -> unit
