open Velum_isa

(* A micro-TLB entry mirrors one translation the backing {!Tlb} is known
   to hold: while the TLB's generation is unchanged, replaying the access
   through the TLB would hit — same physical address, zero cycles, one
   [note_hit] — so serving it from here is observationally identical and
   skips the full translator call chain.  [load_ok]/[store_ok] are
   learned per access kind because the translators gate stores on the
   dirty bit independently of read permission. *)
type entry = {
  vpn : int64;
  ppn : int64;  (* 4 KiB frame of the translated pa *)
  user : bool;
  mutable load_ok : bool;
  mutable store_ok : bool;
  gen : int;  (* Tlb.generation at fill time *)
}

type t = {
  tlb : Tlb.t;
  slots : entry option array;  (* direct-mapped on the low vpn bits *)
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
}

let num_slots = 32
let slot_mask = Int64.of_int (num_slots - 1)

let create ~tlb =
  { tlb; slots = Array.make num_slots None; hits = 0; misses = 0; fills = 0 }

let backing t = t.tlb
let generation t = Tlb.generation t.tlb

let page_off va = Int64.logand va (Int64.of_int (Arch.page_size - 1))
let slot_of vpn = Int64.to_int (Int64.logand vpn slot_mask)

let lookup t ~access ~user va =
  let vpn = Int64.shift_right_logical va Arch.page_shift in
  match t.slots.(slot_of vpn) with
  | Some e
    when e.vpn = vpn && e.user = user
         && (match access with
            | Arch.Load -> e.load_ok
            | Arch.Store -> e.store_ok
            | Arch.Fetch -> false)
         && e.gen = Tlb.generation t.tlb ->
      t.hits <- t.hits + 1;
      (* replicate the side effect the real TLB hit would have had *)
      Tlb.note_hit t.tlb;
      Some (Int64.logor (Int64.shift_left e.ppn Arch.page_shift) (page_off va))
  | _ ->
      t.misses <- t.misses + 1;
      None

(* Cache a successful RAM translation, but only after verifying that the
   backing TLB now holds an entry that would satisfy this access on its
   own (permissions pass, stores find the dirty bit hardened).  The
   check is the strictest of the translators' hit predicates, so an
   entry some laxer translator would accept is merely not cached — never
   the other way round.  Translations that bypassed the TLB entirely
   (bare-metal runs with paging off) fail the probe and stay uncached;
   their translate path is already trivial. *)
let fill t ~access ~user ~va ~pa =
  let vpn = Int64.shift_right_logical va Arch.page_shift in
  match Tlb.lookup t.tlb ~vpn with
  | Some e
    when (not e.Tlb.mmio)
         && ((not user) || e.perms.Pte.u)
         && (match access with
            | Arch.Load -> e.perms.Pte.r
            | Arch.Store -> e.perms.Pte.w && e.dirty_ok
            | Arch.Fetch -> false) ->
      let ppn = Int64.shift_right_logical pa Arch.page_shift in
      let gen = Tlb.generation t.tlb in
      let slot = slot_of vpn in
      (match t.slots.(slot) with
      | Some old when old.vpn = vpn && old.user = user && old.gen = gen && old.ppn = ppn
        -> (
          match access with
          | Arch.Load -> old.load_ok <- true
          | Arch.Store -> old.store_ok <- true
          | Arch.Fetch -> ())
      | _ ->
          t.slots.(slot) <-
            Some
              {
                vpn;
                ppn;
                user;
                load_ok = access = Arch.Load;
                store_ok = access = Arch.Store;
                gen;
              });
      t.fills <- t.fills + 1
  | _ -> ()

let hits t = t.hits
let misses t = t.misses
let fills t = t.fills

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.fills <- 0
