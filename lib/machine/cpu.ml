open Velum_isa
open Velum_util

type state = {
  regs : int64 array;
  mutable pc : int64;
  mutable mode : Arch.mode;
  csrs : int64 array;
  mutable halted : bool;
  mutable waiting : bool;
  mutable instret : int64;
}

let num_csrs = List.length Arch.all_csrs

let create_state ?(pc = 0L) ?(mode = Arch.Supervisor) () =
  {
    regs = Array.make Arch.num_regs 0L;
    pc;
    mode;
    csrs = Array.make num_csrs 0L;
    halted = false;
    waiting = false;
    instret = 0L;
  }

let copy_state s =
  {
    regs = Array.copy s.regs;
    pc = s.pc;
    mode = s.mode;
    csrs = Array.copy s.csrs;
    halted = s.halted;
    waiting = s.waiting;
    instret = s.instret;
  }

let get_reg s r = s.regs.(r)
let set_reg s r v = if r <> 0 then s.regs.(r) <- v
let get_csr s c = s.csrs.(Arch.csr_index c)
let set_csr s c v = s.csrs.(Arch.csr_index c) <- v

(* sie status bits *)
let gie_bit = 63
let spie_bit = 62
let spp_bit = 61

let gie s = Bitops.test_bit (get_csr s Arch.Sie) gie_bit
let set_gie s b = set_csr s Arch.Sie (Bitops.set_bit (get_csr s Arch.Sie) gie_bit b)

let deliver_trap s ~cause ~tval =
  set_csr s Arch.Sepc s.pc;
  set_csr s Arch.Scause (Arch.cause_code cause);
  set_csr s Arch.Stval tval;
  let sie = get_csr s Arch.Sie in
  let sie = Bitops.set_bit sie spp_bit (s.mode = Arch.Supervisor) in
  let sie = Bitops.set_bit sie spie_bit (Bitops.test_bit sie gie_bit) in
  let sie = Bitops.set_bit sie gie_bit false in
  set_csr s Arch.Sie sie;
  s.mode <- Arch.Supervisor;
  s.waiting <- false;
  s.pc <- get_csr s Arch.Stvec

let apply_sret s =
  let sie = get_csr s Arch.Sie in
  s.mode <- (if Bitops.test_bit sie spp_bit then Arch.Supervisor else Arch.User);
  set_csr s Arch.Sie (Bitops.set_bit sie gie_bit (Bitops.test_bit sie spie_bit));
  s.pc <- get_csr s Arch.Sepc

let timer_pending s ~now =
  let cmp = get_csr s Arch.Stimecmp in
  cmp <> 0L && Int64.unsigned_compare now cmp >= 0

let interrupt_pending s ~now ~ext_irq =
  let sie = get_csr s Arch.Sie in
  if not (Bitops.test_bit sie gie_bit) then None
  else if ext_irq && Bitops.test_bit sie Arch.irq_external then
    Some Arch.External_interrupt
  else if timer_pending s ~now && Bitops.test_bit sie Arch.irq_timer then
    Some Arch.Timer_interrupt
  else None

let synth_sip s ~now ~ext_irq =
  let v = if timer_pending s ~now then Bitops.set_bit 0L Arch.irq_timer true else 0L in
  if ext_irq then Bitops.set_bit v Arch.irq_external true else v

let csr_read_native s ~now ~ext_irq = function
  | Arch.Time -> now
  | Arch.Sip -> synth_sip s ~now ~ext_irq
  | c -> get_csr s c

type xlate = { pa : int64; mmio : bool; xlate_cycles : int }
type xlate_fault = [ `Page | `Access ]

type env =
  | Native of {
      mmio_read : int64 -> Instr.width -> int64 option;
      mmio_write : int64 -> Instr.width -> int64 -> bool;
      port_in : int -> int64 option;
      port_out : int -> int64 -> bool;
    }
  | Deprivileged

type ctx = {
  translate : access:Arch.access -> user:bool -> int64 -> (xlate, xlate_fault) result;
  read_ram : int64 -> Instr.width -> int64;
  write_ram : int64 -> Instr.width -> int64 -> unit;
  flush_tlb : unit -> unit;
  now : unit -> int64;
  ext_irq : unit -> bool;
  cost : Cost_model.t;
  env : env;
  dtlb : Dtlb.t option;
}

type vmexit =
  | X_privileged of Instr.t
  | X_trap of { cause : Arch.cause; tval : int64 }
  | X_page_fault of { access : Arch.access; va : int64 }
  | X_mmio_load of { rd : Arch.reg; pa : int64; width : Instr.width }
  | X_mmio_store of { pa : int64; width : Instr.width; value : int64 }
  | X_hypercall

let pp_vmexit ppf = function
  | X_privileged i -> Format.fprintf ppf "privileged(%a)" Instr.pp i
  | X_trap { cause; tval } ->
      Format.fprintf ppf "trap(%s, 0x%Lx)" (Arch.cause_name cause) tval
  | X_page_fault { access; va } ->
      Format.fprintf ppf "page-fault(%s, 0x%Lx)" (Arch.access_name access) va
  | X_mmio_load { rd; pa; width } ->
      Format.fprintf ppf "mmio-load(%s, 0x%Lx, %d)" (Arch.reg_name rd) pa
        (Instr.width_bytes width)
  | X_mmio_store { pa; width; value } ->
      Format.fprintf ppf "mmio-store(0x%Lx, %d, 0x%Lx)" pa (Instr.width_bytes width) value
  | X_hypercall -> Format.pp_print_string ppf "hypercall"

let advance_pc s = s.pc <- Int64.add s.pc (Int64.of_int Arch.instr_bytes)

type stop = Budget | Halted | Waiting | Exit of vmexit

(* Outcome of one instruction: cycles consumed, and whether the hart must
   stop.  Native traps are folded into Retired (the trap has been
   delivered and execution continues at stvec). *)
type step = Retired of int | Stop_exec of stop * int

let alu_cycles cost = function
  | Instr.Mul -> cost.Cost_model.mul
  | Instr.Div | Instr.Rem -> cost.Cost_model.div
  | _ -> 0

let eval_alu op a b =
  match op with
  | Instr.Add -> Int64.add a b
  | Instr.Sub -> Int64.sub a b
  | Instr.Mul -> Int64.mul a b
  | Instr.Div ->
      if b = 0L then -1L
      else if a = Int64.min_int && b = -1L then Int64.min_int
      else Int64.div a b
  | Instr.Rem ->
      if b = 0L then a else if a = Int64.min_int && b = -1L then 0L else Int64.rem a b
  | Instr.And -> Int64.logand a b
  | Instr.Or -> Int64.logor a b
  | Instr.Xor -> Int64.logxor a b
  | Instr.Sll -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Instr.Srl -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Instr.Sra -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Instr.Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Instr.Sltu -> if Int64.unsigned_compare a b < 0 then 1L else 0L

(* Immediates: bitwise ops use the zero-extended low 32 bits, shifts the
   low 6 bits; arithmetic and compares use the sign-extended value the
   decoder produced. *)
let alui_imm op imm =
  match op with
  | Instr.And | Instr.Or | Instr.Xor -> Int64.logand imm 0xFFFF_FFFFL
  | Instr.Sll | Instr.Srl | Instr.Sra -> Int64.logand imm 63L
  | _ -> imm

let eval_branch op a b =
  match op with
  | Instr.Beq -> a = b
  | Instr.Bne -> a <> b
  | Instr.Blt -> Int64.compare a b < 0
  | Instr.Bge -> Int64.compare a b >= 0
  | Instr.Bltu -> Int64.unsigned_compare a b < 0
  | Instr.Bgeu -> Int64.unsigned_compare a b >= 0

let is_deprivileged ctx = match ctx.env with Deprivileged -> true | Native _ -> false

let trap_or_exit s ctx cause tval cycles =
  if is_deprivileged ctx then Stop_exec (Exit (X_trap { cause; tval }), cycles)
  else begin
    deliver_trap s ~cause ~tval;
    Retired (cycles + ctx.cost.Cost_model.trap_enter)
  end

(* Data access: translate, then dispatch to RAM, a device, or an exit.
   [mmio_rd] is the destination register when this is a load (used in
   the MMIO-load exit payload); [store_value] distinguishes stores. *)
let data_access s ctx access va width ~mmio_rd ~store_value
    ~(k_load : int64 -> int -> step) =
  let cost = ctx.cost in
  let bytes = Instr.width_bytes width in
  if Int64.rem va (Int64.of_int bytes) <> 0L then
    trap_or_exit s ctx (Arch.fault_cause access `Misaligned) va cost.base_instr
  else
    let user = s.mode = Arch.User in
    match ctx.translate ~access ~user va with
    | Error `Page ->
        if is_deprivileged ctx then
          Stop_exec (Exit (X_page_fault { access; va }), cost.base_instr)
        else trap_or_exit s ctx (Arch.fault_cause access `Page) va cost.base_instr
    | Error `Access -> trap_or_exit s ctx (Arch.fault_cause access `Access) va cost.base_instr
    | Ok { pa; mmio; xlate_cycles } -> (
        let cyc = cost.base_instr + cost.mem_access + xlate_cycles in
        if mmio then
          match ctx.env with
          | Deprivileged -> (
              match store_value with
              | None ->
                  Stop_exec
                    (Exit (X_mmio_load { rd = mmio_rd; pa; width }), cost.base_instr)
              | Some value ->
                  Stop_exec (Exit (X_mmio_store { pa; width; value }), cost.base_instr))
          | Native { mmio_read; mmio_write; _ } -> (
              match store_value with
              | None -> (
                  match mmio_read pa width with
                  | Some v -> k_load v (cyc + cost.mmio_device)
                  | None -> trap_or_exit s ctx (Arch.fault_cause access `Access) va cost.base_instr)
              | Some v ->
                  if mmio_write pa width v then begin
                    advance_pc s;
                    Retired (cyc + cost.mmio_device)
                  end
                  else trap_or_exit s ctx (Arch.fault_cause access `Access) va cost.base_instr)
        else
          match store_value with
          | None -> k_load (ctx.read_ram pa width) cyc
          | Some v ->
              ctx.write_ram pa width v;
              advance_pc s;
              Retired cyc)

(* Reached only on a native hart in supervisor mode. *)
let exec_privileged s ctx insn =
  let cost = ctx.cost in
  let ok cycles =
    advance_pc s;
    Retired cycles
  in
  match (insn, ctx.env) with
  | _, Deprivileged -> assert false
  | Instr.Csrr (rd, csr), _ ->
      set_reg s rd (csr_read_native s ~now:(ctx.now ()) ~ext_irq:(ctx.ext_irq ()) csr);
      ok cost.base_instr
  | Instr.Csrw (csr, rs1), _ ->
      if Arch.csr_read_only csr then
        trap_or_exit s ctx Arch.Illegal_instruction (Instr.encode insn) cost.base_instr
      else begin
        set_csr s csr (get_reg s rs1);
        if csr = Arch.Satp then ctx.flush_tlb ();
        ok cost.base_instr
      end
  | Instr.Sret, _ ->
      apply_sret s;
      Retired (cost.base_instr + cost.trap_enter)
  | Instr.Sfence, _ ->
      ctx.flush_tlb ();
      ok (cost.base_instr + cost.tlb_fill)
  | Instr.Wfi, _ ->
      if interrupt_pending s ~now:(ctx.now ()) ~ext_irq:(ctx.ext_irq ()) <> None then
        ok cost.base_instr
      else begin
        s.waiting <- true;
        advance_pc s;
        Stop_exec (Waiting, cost.base_instr)
      end
  | Instr.In (rd, port), Native { port_in; _ } -> (
      match port_in port with
      | Some v ->
          set_reg s rd v;
          ok (cost.base_instr + cost.port_io)
      | None -> trap_or_exit s ctx Arch.Load_access_fault (Int64.of_int port) cost.base_instr)
  | Instr.Out (port, rs1), Native { port_out; _ } ->
      if port_out port (get_reg s rs1) then ok (cost.base_instr + cost.port_io)
      else trap_or_exit s ctx Arch.Store_access_fault (Int64.of_int port) cost.base_instr
  | Instr.Halt, _ ->
      s.halted <- true;
      Stop_exec (Halted, cost.base_instr)
  | _ -> assert false

let exec_insn s ctx insn =
  let cost = ctx.cost in
  let deprivileged = is_deprivileged ctx in
  match insn with
  | Instr.Nop ->
      advance_pc s;
      Retired cost.base_instr
  | Instr.Alu (op, rd, rs1, rs2) ->
      set_reg s rd (eval_alu op (get_reg s rs1) (get_reg s rs2));
      advance_pc s;
      Retired (cost.base_instr + alu_cycles cost op)
  | Instr.Alui (op, rd, rs1, imm) ->
      set_reg s rd (eval_alu op (get_reg s rs1) (alui_imm op imm));
      advance_pc s;
      Retired (cost.base_instr + alu_cycles cost op)
  | Instr.Lui (rd, imm) ->
      set_reg s rd (Int64.shift_left imm 32);
      advance_pc s;
      Retired cost.base_instr
  | Instr.Load { rd; base; off; width } ->
      let va = Int64.add (get_reg s base) off in
      data_access s ctx Arch.Load va width ~mmio_rd:rd ~store_value:None
        ~k_load:(fun v cyc ->
          set_reg s rd v;
          advance_pc s;
          Retired cyc)
  | Instr.Store { src; base; off; width } ->
      let va = Int64.add (get_reg s base) off in
      data_access s ctx Arch.Store va width ~mmio_rd:0
        ~store_value:(Some (get_reg s src))
        ~k_load:(fun _ _ -> assert false)
  | Instr.Branch (op, rs1, rs2, off) ->
      if eval_branch op (get_reg s rs1) (get_reg s rs2) then
        s.pc <- Int64.add s.pc off
      else advance_pc s;
      Retired cost.base_instr
  | Instr.Jal (rd, off) ->
      set_reg s rd (Int64.add s.pc (Int64.of_int Arch.instr_bytes));
      s.pc <- Int64.add s.pc off;
      Retired cost.base_instr
  | Instr.Jalr (rd, rs1, imm) ->
      let target = Int64.add (get_reg s rs1) imm in
      set_reg s rd (Int64.add s.pc (Int64.of_int Arch.instr_bytes));
      s.pc <- target;
      Retired cost.base_instr
  | Instr.Ecall ->
      if deprivileged then
        Stop_exec (Exit (X_trap { cause = Arch.Syscall; tval = 0L }), cost.base_instr)
      else trap_or_exit s ctx Arch.Syscall 0L cost.base_instr
  | Instr.Ebreak -> trap_or_exit s ctx Arch.Breakpoint 0L cost.base_instr
  | Instr.Hcall ->
      if deprivileged then Stop_exec (Exit X_hypercall, cost.base_instr)
      else trap_or_exit s ctx Arch.Illegal_instruction (Instr.encode insn) cost.base_instr
  | Instr.Csrr _ | Instr.Csrw _ | Instr.Sret | Instr.Sfence | Instr.Wfi
  | Instr.In _ | Instr.Out _ | Instr.Halt ->
      if deprivileged then Stop_exec (Exit (X_privileged insn), cost.base_instr)
      else if s.mode = Arch.User then
        trap_or_exit s ctx Arch.Illegal_instruction (Instr.encode insn) cost.base_instr
      else exec_privileged s ctx insn

let fetch_prelude s ctx =
  let cost = ctx.cost in
  let pc = s.pc in
  if Int64.rem pc (Int64.of_int Arch.instr_bytes) <> 0L then
    Error (trap_or_exit s ctx Arch.Misaligned_fetch pc cost.base_instr)
  else
    let user = s.mode = Arch.User in
    match ctx.translate ~access:Arch.Fetch ~user pc with
    | Error `Page ->
        if is_deprivileged ctx then
          Error
            (Stop_exec (Exit (X_page_fault { access = Arch.Fetch; va = pc }), cost.base_instr))
        else Error (trap_or_exit s ctx Arch.Fetch_page_fault pc cost.base_instr)
    | Error `Access -> Error (trap_or_exit s ctx Arch.Fetch_access_fault pc cost.base_instr)
    | Ok x ->
        if x.mmio then Error (trap_or_exit s ctx Arch.Fetch_access_fault pc cost.base_instr)
        else Ok x

let step_one s ctx =
  let cost = ctx.cost in
  match fetch_prelude s ctx with
  | Error step -> step
  | Ok { pa; mmio = _; xlate_cycles } -> (
      let word = ctx.read_ram pa Instr.W64 in
      match Instr.decode word with
      | None -> trap_or_exit s ctx Arch.Illegal_instruction word cost.base_instr
      | Some insn -> (
          match exec_insn s ctx insn with
          | Retired c ->
              s.instret <- Int64.add s.instret 1L;
              Retired (c + xlate_cycles)
          | Stop_exec (reason, c) -> Stop_exec (reason, c + xlate_cycles)))

let run s ctx ~budget =
  let cost = ctx.cost in
  let deprivileged = is_deprivileged ctx in
  if s.halted then (0, Halted)
  else begin
    let consumed = ref 0 in
    let result = ref None in
    while !result = None do
      if !consumed >= budget then result := Some Budget
      else if s.halted then result := Some Halted
      else begin
        (if not deprivileged then
           match interrupt_pending s ~now:(ctx.now ()) ~ext_irq:(ctx.ext_irq ()) with
           | Some cause ->
               deliver_trap s ~cause ~tval:0L;
               consumed := !consumed + cost.trap_enter
           | None -> ());
        if s.waiting then result := Some Waiting
        else
          match step_one s ctx with
          | Retired c -> consumed := !consumed + c
          | Stop_exec (reason, c) ->
              consumed := !consumed + c;
              result := Some reason
      end
    done;
    let stop = match !result with Some r -> r | None -> assert false in
    (!consumed, stop)
  end
