(** Superblock trace IR: the compiled form of a hot multi-block path.

    The block engine's next tier above chaining ({!Trans_cache}):
    instead of dispatching block→block through the cache, a hot chain of
    decoded blocks is lowered once into a small linear IR and then
    executed op after op with {e no} per-instruction dispatch overhead.
    The lowering bakes in everything that is static along the trace:

    - {b Cost fusion.}  Every op carries its exact interpreter cycle
      cost as a constant (base, ALU sub-op extra, memory access); the
      executor accumulates a single int and charges it in one piece at
      the exit, reconciled per-op only against the fuel budget.
    - {b Guard elimination.}  Interior ops carry no mode/paging/
      generation guards.  This is sound because traces run only
      deprivileged (no interrupt window between instructions), interior
      ops are all [Fast]-class (mode and [satp] cannot change — every
      slow instruction is lowered as a trace-terminating {!uop.U_exit}
      with a fully static exit payload), and loads/stores execute only
      on a micro-TLB hit, which by construction cannot move the
      {!Tlb.generation} the entry guard certified.
    - {b Micro-TLB inlining.}  Trace loads/stores call {!Dtlb.lookup}
      directly; any miss (or misalignment, or MMIO) side-exits {e
      before} executing the op, so the interpreter-equivalent slow path
      in the engine handles it with identical observable behaviour.
    - {b Static PCs.}  Every op's PC is a build-time page offset; the
      architectural [pc] is written only at (side) exits, never per op.
      Branch/jump targets inside the trace are resolved to op indices
      (loops run entirely inside the trace); all others leave with the
      target PC materialised from the entry page base.

    The module is pure with respect to {!Trans_cache}: it sees only
    instruction arrays with their page offsets.  The cache owns trace
    storage, promotion and invalidation; the engine owns dispatch. *)

open Velum_isa

(** Where a lowered control transfer lands: an op index inside the trace
    (resolved statically, including loop back-edges), or outside the
    trace at a byte delta from the entry page base (possibly negative or
    beyond the page for cross-page targets). *)
type tgt = Op of int | Out of int

type uop =
  | U_nop of int  (** cycles *)
  | U_alu of { op : Instr.alu_op; rd : int; rs1 : int; rs2 : int; cyc : int }
  | U_alui of { op : Instr.alu_op; rd : int; rs1 : int; imm : int64; cyc : int }
      (** [imm] already folded through {!Cpu.alui_imm} *)
  | U_lui of { rd : int; v : int64; cyc : int }  (** [v] already shifted *)
  | U_load of {
      rd : int;
      base : int;
      off : int64;
      width : Instr.width;
      amask : int64;  (** alignment mask ([width_bytes - 1]) *)
      cyc : int;  (** micro-TLB-hit cost: base + mem_access *)
    }
  | U_store of {
      src : int;
      base : int;
      off : int64;
      width : Instr.width;
      amask : int64;
      cyc : int;
    }
  | U_branch of {
      op : Instr.branch_op;
      rs1 : int;
      rs2 : int;
      t_tgt : tgt;
      f_tgt : tgt;
      cyc : int;
    }
  | U_jal of { rd : int; link : int; tgt : tgt; cyc : int }
      (** [link] is the static return page offset (op offset + 8) *)
  | U_jalr of { rd : int; link : int; rs1 : int; imm : int64; cyc : int }
      (** always leaves the trace (dynamic target) *)
  | U_exit of { stop : Cpu.stop; cyc : int }
      (** a deprivileged slow instruction: the exact static
          [Stop_exec] payload the interpreter would produce, with the PC
          left {e at} the instruction *)

type prog = {
  ops : uop array;
  offs : int array;  (** static page offset of each op *)
  entry_off : int;  (** page offset of [ops.(0)] *)
  live : bool ref;
      (** cleared by the owning cache when any constituent block is
          invalidated; checked at entry and after every store *)
}

(** One constituent decoded block: its instructions and the page offset
    of the first one.  All segments of a trace live in the same physical
    frame and execution regime. *)
type segment = { seg_insns : Instr.t array; seg_off : int }

val build : cost:Cost_model.t -> segments:segment list -> prog option
(** Lower [segments] (in predicted execution order) into a trace
    program.  Junctions are wired statically: each segment must end in a
    terminator (branch, jal, jalr or a slow instruction); branch/jal
    targets falling inside any segment's span become in-trace op-index
    transfers, everything else an [Out] side exit.  Returns [None] when
    the segments are not lowerable (an unterminated segment, or a slow
    instruction in a non-final position) — callers treat that as
    "promotion refused", never as an error. *)

(** Result of one trace execution.  [Fall]: the trace was left with the
    PC written and [instret] flushed; [cycles] includes the fetch
    translation cycles passed as [xl].  [early] marks a side exit (a
    micro-TLB miss, misalignment, or the trace being severed mid-run)
    as opposed to an architectural exit or fuel expiry.  [Stop]: a
    lowered slow instruction produced its static stop.  [Bail]: zero
    ops executed and {e nothing} was touched (the caller must fall back
    to the plain block path to guarantee progress). *)
type outcome =
  | Fall of { cycles : int; early : bool }
  | Stop of { cycles : int; stop : Cpu.stop }
  | Bail

val exec :
  prog ->
  start:int ->
  s:Cpu.state ->
  dtlb:Dtlb.t ->
  read_ram:(int64 -> Instr.width -> int64) ->
  write_ram:(int64 -> Instr.width -> int64 -> unit) ->
  user:bool ->
  page_base:int64 ->
  fuel_left:int ->
  xl:int ->
  outcome
(** Run the trace from op index [start] (the dispatcher maps the entry
    PC's page offset into the first segment).  The caller certifies at
    entry exactly what the block engine's reuse window certifies for a
    block: the PC is aligned in a page whose fetch translation is a
    zero-cycle hit under the current micro-TLB generation, [user]
    matches the trace's regime, and [cost] is the model the trace was
    built with.  [fuel_left] must be positive; [xl] is charged on the
    first executed op, exactly as the engine charges fetch-translation
    cycles. *)
