open Velum_isa

type t = {
  data : Bytes.t;
  frames : int;
  mutable listeners : (int * (ppn:int64 -> lo:int -> hi:int -> unit)) list;
  mutable next_listener : int;
}

let page = Arch.page_size

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  { data = Bytes.make (frames * page) '\000'; frames; listeners = []; next_listener = 0 }

let add_write_listener t f =
  let id = t.next_listener in
  t.next_listener <- id + 1;
  t.listeners <- (id, f) :: t.listeners;
  id

let remove_write_listener t id =
  t.listeners <- List.filter (fun (i, _) -> i <> id) t.listeners

(* Notify every listener of each frame the byte range [pa, pa+bytes)
   touches, with the per-frame byte subrange [lo, hi) that was written
   (so listeners caching derived views of code can invalidate
   precisely).  The empty-listener case must stay free: this sits on the
   store fast path. *)
let notify_range t pa bytes =
  match t.listeners with
  | [] -> ()
  | listeners ->
      let first = Int64.shift_right_logical pa Arch.page_shift in
      let last =
        Int64.shift_right_logical (Int64.add pa (Int64.of_int (bytes - 1))) Arch.page_shift
      in
      let start_off = Int64.to_int (Int64.logand pa (Int64.of_int (page - 1))) in
      let ppn = ref first in
      while Int64.compare !ppn last <= 0 do
        let frame = !ppn in
        let lo = if Int64.equal frame first then start_off else 0 in
        let hi =
          if Int64.equal frame last then
            start_off + bytes - (Int64.to_int (Int64.sub frame first) * page)
          else page
        in
        List.iter (fun (_, f) -> f ~ppn:frame ~lo ~hi) listeners;
        ppn := Int64.add !ppn 1L
      done

let frames t = t.frames
let size_bytes t = t.frames * page

let in_range t ~pa ~bytes =
  pa >= 0L && Int64.add pa (Int64.of_int bytes) <= Int64.of_int (size_bytes t)

let check t pa bytes =
  if not (in_range t ~pa ~bytes) then
    invalid_arg (Printf.sprintf "Phys_mem: access 0x%Lx+%d out of range" pa bytes)

let read t pa w =
  let bytes = Instr.width_bytes w in
  check t pa bytes;
  let off = Int64.to_int pa in
  match w with
  | Instr.W8 -> Int64.of_int (Char.code (Bytes.get t.data off))
  | Instr.W16 -> Int64.of_int (Bytes.get_uint16_le t.data off)
  | Instr.W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data off)) 0xFFFF_FFFFL
  | Instr.W64 -> Bytes.get_int64_le t.data off

let write t pa w v =
  let bytes = Instr.width_bytes w in
  check t pa bytes;
  let off = Int64.to_int pa in
  (match w with
  | Instr.W8 -> Bytes.set t.data off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | Instr.W16 -> Bytes.set_uint16_le t.data off (Int64.to_int (Int64.logand v 0xFFFFL))
  | Instr.W32 -> Bytes.set_int32_le t.data off (Int64.to_int32 v)
  | Instr.W64 -> Bytes.set_int64_le t.data off v);
  notify_range t pa bytes

let load_bytes t ~pa b =
  check t pa (Bytes.length b);
  Bytes.blit b 0 t.data (Int64.to_int pa) (Bytes.length b);
  if Bytes.length b > 0 then notify_range t pa (Bytes.length b)

let frame_off t ppn =
  let i = Int64.to_int ppn in
  if i < 0 || i >= t.frames then
    invalid_arg (Printf.sprintf "Phys_mem: frame %Ld out of range" ppn);
  i * page

let notify_frame t ppn =
  match t.listeners with
  | [] -> ()
  | listeners -> List.iter (fun (_, f) -> f ~ppn ~lo:0 ~hi:page) listeners

let frame_copy t ~src_ppn ~dst_ppn =
  Bytes.blit t.data (frame_off t src_ppn) t.data (frame_off t dst_ppn) page;
  notify_frame t dst_ppn

let frame_fill t ~ppn c =
  Bytes.fill t.data (frame_off t ppn) page c;
  notify_frame t ppn

let frame_read t ~ppn = Bytes.sub t.data (frame_off t ppn) page

let frame_write t ~ppn b =
  if Bytes.length b <> page then invalid_arg "Phys_mem.frame_write: bad length";
  Bytes.blit b 0 t.data (frame_off t ppn) page;
  notify_frame t ppn

let frame_hash t ~ppn = Velum_util.Fnv.hash_bytes ~pos:(frame_off t ppn) ~len:page t.data

let frame_is_zero t ~ppn =
  let off = frame_off t ppn in
  let rec go i = i >= page || (Bytes.get t.data (off + i) = '\000' && go (i + 1)) in
  go 0

let frame_equal t a b =
  let oa = frame_off t a and ob = frame_off t b in
  let rec go i = i >= page || (Bytes.get t.data (oa + i) = Bytes.get t.data (ob + i) && go (i + 1)) in
  go 0

let blit_between ~src ~src_ppn ~dst ~dst_ppn =
  Bytes.blit src.data (frame_off src src_ppn) dst.data (frame_off dst dst_ppn) page;
  notify_frame dst dst_ppn
