open Velum_isa

type tgt = Op of int | Out of int

type uop =
  | U_nop of int
  | U_alu of { op : Instr.alu_op; rd : int; rs1 : int; rs2 : int; cyc : int }
  | U_alui of { op : Instr.alu_op; rd : int; rs1 : int; imm : int64; cyc : int }
  | U_lui of { rd : int; v : int64; cyc : int }
  | U_load of {
      rd : int;
      base : int;
      off : int64;
      width : Instr.width;
      amask : int64;
      cyc : int;
    }
  | U_store of {
      src : int;
      base : int;
      off : int64;
      width : Instr.width;
      amask : int64;
      cyc : int;
    }
  | U_branch of {
      op : Instr.branch_op;
      rs1 : int;
      rs2 : int;
      t_tgt : tgt;
      f_tgt : tgt;
      cyc : int;
    }
  | U_jal of { rd : int; link : int; tgt : tgt; cyc : int }
  | U_jalr of { rd : int; link : int; rs1 : int; imm : int64; cyc : int }
  | U_exit of { stop : Cpu.stop; cyc : int }

type prog = {
  ops : uop array;
  offs : int array;
  entry_off : int;
  live : bool ref;
}

type segment = { seg_insns : Instr.t array; seg_off : int }

(* ---- lowering ---- *)

let ib = Arch.instr_bytes

(* The static deprivileged outcome of a slow instruction (cf.
   [Cpu.exec_insn]'s deprivileged arms: every one is a [Stop_exec] of a
   constant payload costing [base_instr], with the PC not advanced). *)
let static_exit insn =
  match insn with
  | Instr.Ecall -> Some (Cpu.Exit (Cpu.X_trap { cause = Arch.Syscall; tval = 0L }))
  | Instr.Ebreak -> Some (Cpu.Exit (Cpu.X_trap { cause = Arch.Breakpoint; tval = 0L }))
  | Instr.Hcall -> Some (Cpu.Exit Cpu.X_hypercall)
  | Instr.Csrr _ | Instr.Csrw _ | Instr.Sret | Instr.Sfence | Instr.Wfi
  | Instr.In _ | Instr.Out _ | Instr.Halt ->
      Some (Cpu.Exit (Cpu.X_privileged insn))
  | _ -> None

let build ~cost ~segments =
  let base = cost.Cost_model.base_instr in
  let mem = base + cost.Cost_model.mem_access in
  let segs = Array.of_list segments in
  let nseg = Array.length segs in
  if nseg = 0 then None
  else begin
    (* first-op index of each segment, and the total op count *)
    let firsts = Array.make nseg 0 in
    let total = ref 0 in
    Array.iteri
      (fun i seg ->
        firsts.(i) <- !total;
        total := !total + Array.length seg.seg_insns)
      segs;
    let n = !total in
    if n = 0 then None
    else begin
      (* A page offset lands in the trace when some segment's span
         contains it (8-aligned); the first containing segment wins —
         overlapping segments decode the same bytes, so either mapping
         executes identically. *)
      let resolve off =
        if off land (ib - 1) <> 0 then Out off
        else begin
          let found = ref (Out off) in
          (try
             for i = 0 to nseg - 1 do
               let s = segs.(i) in
               let lo = s.seg_off
               and hi = s.seg_off + (ib * Array.length s.seg_insns) in
               if off >= lo && off < hi then begin
                 found := Op (firsts.(i) + ((off - lo) / ib));
                 raise Exit
               end
             done
           with Exit -> ());
          !found
        end
      in
      let ops = Array.make n (U_nop base) in
      let offs = Array.make n 0 in
      let ok = ref true in
      Array.iteri
        (fun si seg ->
          let len = Array.length seg.seg_insns in
          for k = 0 to len - 1 do
            let insn = seg.seg_insns.(k) in
            let off = seg.seg_off + (k * ib) in
            let idx = firsts.(si) + k in
            offs.(idx) <- off;
            let last = k = len - 1 in
            let lowered =
              match insn with
              | Instr.Nop -> Some (U_nop base)
              | Instr.Alu (op, rd, rs1, rs2) ->
                  Some (U_alu { op; rd; rs1; rs2; cyc = base + Cpu.alu_cycles cost op })
              | Instr.Alui (op, rd, rs1, imm) ->
                  Some
                    (U_alui
                       {
                         op;
                         rd;
                         rs1;
                         imm = Cpu.alui_imm op imm;
                         cyc = base + Cpu.alu_cycles cost op;
                       })
              | Instr.Lui (rd, imm) ->
                  Some (U_lui { rd; v = Int64.shift_left imm 32; cyc = base })
              | Instr.Load { rd; base = b; off = o; width } ->
                  Some
                    (U_load
                       {
                         rd;
                         base = b;
                         off = o;
                         width;
                         amask = Int64.of_int (Instr.width_bytes width - 1);
                         cyc = mem;
                       })
              | Instr.Store { src; base = b; off = o; width } ->
                  (* a store must have a successor op to side-exit to
                     when the trace severs itself; terminated segments
                     guarantee it is never last *)
                  if last then None
                  else
                    Some
                      (U_store
                         {
                           src;
                           base = b;
                           off = o;
                           width;
                           amask = Int64.of_int (Instr.width_bytes width - 1);
                           cyc = mem;
                         })
              | Instr.Branch (op, rs1, rs2, delta) when last ->
                  Some
                    (U_branch
                       {
                         op;
                         rs1;
                         rs2;
                         t_tgt = resolve (off + Int64.to_int delta);
                         f_tgt = resolve (off + ib);
                         cyc = base;
                       })
              | Instr.Jal (rd, delta) when last ->
                  Some
                    (U_jal
                       {
                         rd;
                         link = off + ib;
                         tgt = resolve (off + Int64.to_int delta);
                         cyc = base;
                       })
              | Instr.Jalr (rd, rs1, imm) when last ->
                  Some (U_jalr { rd; link = off + ib; rs1; imm; cyc = base })
              | insn when last -> (
                  match static_exit insn with
                  | Some stop -> Some (U_exit { stop; cyc = base })
                  | None -> None)
              | _ ->
                  (* a terminator in a non-final position, or an
                     unterminated segment end: not lowerable *)
                  None
            in
            match lowered with
            | Some u -> ops.(idx) <- u
            | None -> ok := false
          done;
          (* an unterminated segment (last insn is a plain straight-line
             op) would fall off the op array: refuse it *)
          if len > 0 then begin
            match seg.seg_insns.(len - 1) with
            | Instr.Branch _ | Instr.Jal _ | Instr.Jalr _ -> ()
            | insn -> if static_exit insn = None then ok := false
          end)
        segs;
      if not !ok then None
      else Some { ops; offs; entry_off = segs.(0).seg_off; live = ref true }
    end
  end

(* ---- execution ---- *)

type outcome =
  | Fall of { cycles : int; early : bool }
  | Stop of { cycles : int; stop : Cpu.stop }
  | Bail

let exec p ~start ~s ~dtlb ~read_ram ~write_ram ~user ~page_base ~fuel_left ~xl =
  if fuel_left <= 0 then Bail
  else begin
    let regs = s.Cpu.regs in
    let ops = p.ops and offs = p.offs and live = p.live in
    (* [cyc] mirrors the engine's [consumed] delta (including [xl] once
       the first op executes); [ret] is the batched instret delta; [xlp]
       is the still-uncharged fetch-translation cost. *)
    let leave i cyc ret early =
      if ret = 0 then Bail
      else begin
        s.Cpu.pc <- Int64.logor page_base (Int64.of_int offs.(i));
        s.Cpu.instret <- Int64.add s.Cpu.instret (Int64.of_int ret);
        Fall { cycles = cyc; early }
      end
    in
    let out delta cyc ret =
      s.Cpu.pc <- Int64.add page_base (Int64.of_int delta);
      s.Cpu.instret <- Int64.add s.Cpu.instret (Int64.of_int ret);
      Fall { cycles = cyc; early = false }
    in
    let rec go i cyc ret xlp =
      (* the engine runs an instruction only while consumed < fuel; the
         first op is always admitted (cyc = 0 < fuel_left) *)
      if cyc >= fuel_left then leave i cyc ret false
      else
        match ops.(i) with
        | U_nop c -> go (i + 1) (cyc + c + xlp) (ret + 1) 0
        | U_alu { op; rd; rs1; rs2; cyc = c } ->
            if rd <> 0 then regs.(rd) <- Cpu.eval_alu op regs.(rs1) regs.(rs2);
            go (i + 1) (cyc + c + xlp) (ret + 1) 0
        | U_alui { op; rd; rs1; imm; cyc = c } ->
            if rd <> 0 then regs.(rd) <- Cpu.eval_alu op regs.(rs1) imm;
            go (i + 1) (cyc + c + xlp) (ret + 1) 0
        | U_lui { rd; v; cyc = c } ->
            if rd <> 0 then regs.(rd) <- v;
            go (i + 1) (cyc + c + xlp) (ret + 1) 0
        | U_load { rd; base; off; width; amask; cyc = c } -> (
            let va = Int64.add regs.(base) off in
            if Int64.logand va amask <> 0L then leave i cyc ret true
            else
              match Dtlb.lookup dtlb ~access:Arch.Load ~user va with
              | Some pa ->
                  let v = read_ram pa width in
                  if rd <> 0 then regs.(rd) <- v;
                  go (i + 1) (cyc + c + xlp) (ret + 1) 0
              | None -> leave i cyc ret true)
        | U_store { src; base; off; width; amask; cyc = c } -> (
            let va = Int64.add regs.(base) off in
            if Int64.logand va amask <> 0L then leave i cyc ret true
            else
              match Dtlb.lookup dtlb ~access:Arch.Store ~user va with
              | Some pa ->
                  write_ram pa width regs.(src);
                  (* the write may have severed this very trace (a store
                     into a constituent block's bytes); the op retired,
                     so side-exit at the next op, like the engine's
                     [b.valid] continuation check *)
                  if !live then go (i + 1) (cyc + c + xlp) (ret + 1) 0
                  else leave (i + 1) (cyc + c + xlp) (ret + 1) true
              | None -> leave i cyc ret true)
        | U_branch { op; rs1; rs2; t_tgt; f_tgt; cyc = c } -> (
            let tgt = if Cpu.eval_branch op regs.(rs1) regs.(rs2) then t_tgt else f_tgt in
            match tgt with
            | Op j -> go j (cyc + c + xlp) (ret + 1) 0
            | Out delta -> out delta (cyc + c + xlp) (ret + 1))
        | U_jal { rd; link; tgt; cyc = c } -> (
            if rd <> 0 then regs.(rd) <- Int64.add page_base (Int64.of_int link);
            match tgt with
            | Op j -> go j (cyc + c + xlp) (ret + 1) 0
            | Out delta -> out delta (cyc + c + xlp) (ret + 1))
        | U_jalr { rd; link; rs1; imm; cyc = c } ->
            let target = Int64.add regs.(rs1) imm in
            if rd <> 0 then regs.(rd) <- Int64.add page_base (Int64.of_int link);
            s.Cpu.pc <- target;
            s.Cpu.instret <- Int64.add s.Cpu.instret (Int64.of_int (ret + 1));
            Fall { cycles = cyc + c + xlp; early = false }
        | U_exit { stop; cyc = c } ->
            s.Cpu.pc <- Int64.logor page_base (Int64.of_int offs.(i));
            if ret > 0 then s.Cpu.instret <- Int64.add s.Cpu.instret (Int64.of_int ret);
            Stop { cycles = cyc + c + xlp; stop }
    in
    go start 0 0 xl
  end
