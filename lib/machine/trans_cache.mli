(** Decoded-block translation cache.

    The block execution engine ({!Engine}) avoids the per-instruction
    fetch/decode work of the reference interpreter by caching decoded
    straight-line blocks ({!Velum_isa.Block}).  Entries are keyed by
    where the code {e physically} lives and the execution regime:

    {v (physical frame, byte offset in frame, privilege mode, paging on) v}

    Keying by machine frame (not virtual PC) makes the cache immune to
    remapping: changing a translation never changes the bytes a frame
    holds, so [satp] writes and TLB flushes need not drop entries — only
    {e writes} to a cached frame do (self-modifying code, DMA, swap-in,
    COW copies, migration restores).  The mode and paging bits are in
    the key because future engines may specialise blocks per regime, and
    because they make the key a faithful summary of everything fetch
    depends on besides the bytes.

    Eviction is LRU over a bounded number of blocks.  Invalidation marks
    entries dead in place (so an engine holding a direct reference to a
    block observes the invalidation mid-block) and unlinks them. *)

open Velum_isa

type key

type block = {
  key : key;  (** the key this block was interned under *)
  insns : Instr.t array;
  classes : Block.cls array;
  start_off : int;  (** byte offset of [insns.(0)] within its frame *)
  mutable valid : bool;
      (** cleared by invalidation; engines must re-fetch when false *)
  mutable stamp : int;  (** LRU clock *)
  mutable succ_fall : block option;
      (** chained fall-through successor (QEMU-TCG-style); a prediction
          only — {!follow} re-validates before use *)
  mutable succ_taken : block option;  (** chained taken/jump successor *)
  mutable preds : (block * bool) list;
      (** incoming chain edges [(pred, taken)], kept so invalidation can
          sever every edge pointing here *)
  mutable heat : int;
      (** dispatch count since the last promotion attempt; the engine
          bumps it and calls {!try_promote} when it crosses
          {!promote_threshold} *)
  mutable hot_fall : int;  (** fall-through chain follows (see {!follow}) *)
  mutable hot_taken : int;  (** taken-edge chain follows *)
  mutable trace_at : trace option;
      (** the superblock trace headed by this block, if one is
          installed; dispatch checks it right after block resolution *)
  mutable in_traces : trace list;
      (** every trace this block is a constituent of — invalidating,
          evicting or replacing the block severs them all *)
}

(** A compiled superblock trace: the lowered program, the cost model its
    per-op cycle constants were baked against (dispatch requires
    physical equality with the live context's model), and the
    constituent blocks (head first) whose bytes it was built from.
    Liveness is the shared [t_prog.live] ref — severed in place so an
    engine mid-trace observes it after the very store that killed it. *)
and trace = {
  t_prog : Trace_ir.prog;
  t_cost : Cost_model.t;
  t_blocks : block list;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of cached blocks (default 1024). *)

val key : ppn:int64 -> off:int -> user:bool -> paging:bool -> key
(** [off] is the byte offset of the block start within frame [ppn]. *)

val same_regime_key : block -> key -> bool
(** The block's frame/mode/paging bits match [key]'s (offset ignored). *)

val find : t -> key -> block option
(** Bumps the LRU stamp and the hit counter on success; counts a miss
    otherwise. *)

val insert : t -> key:key -> ppn:int64 -> insns:Instr.t array ->
  classes:Block.cls array -> start_off:int -> block
(** Caches a freshly decoded block, evicting the LRU entry when at
    capacity.  Returns the interned block. *)

val set_succ : t -> from:block -> taken:bool -> target:block -> unit
(** Patch a chain edge: [from]'s fall-through ([taken = false]) or taken
    ([taken = true]) successor slot now points at [target].  Ignored
    unless both blocks are valid and share frame/mode/paging regime.
    Re-patching an edge replaces it (and fixes up [preds]). *)

val follow : t -> from:block -> taken:bool -> key:key -> off:int -> block option
(** Chase a chain edge instead of a hashtable {!find}: returns the
    successor only if it is valid, its regime matches [key] and its span
    contains byte offset [off].  Bumps the LRU stamp and the
    chain-follow counter on success; on [None] the caller falls back to
    {!find} and should re-patch via {!set_succ}. *)

val invalidate_range : t -> ppn:int64 -> lo:int -> hi:int -> unit
(** Drop (and mark dead) every block of frame [ppn] whose decoded span
    overlaps the byte range [\[lo, hi)] — called when exactly those
    bytes changed.  Blocks in disjoint parts of the frame survive, so
    data/stack writes into a page that also holds code do not throw the
    code's blocks away. *)

val invalidate_frame : t -> ppn:int64 -> unit
(** [invalidate_range] over the whole frame — for events where the
    changed range is unknown (frame replaced, revoked, or restored). *)

(** {1 Superblock traces} *)

val promote_threshold : int
(** Dispatches of a block between promotion attempts (engines compare
    [heat] against this). *)

val try_promote : t -> head:block -> cost:Cost_model.t -> bool
(** Promote the hot path headed at [head] into a trace: walk the
    predicted continuation (hotter chain direction, static jal targets)
    up to the size caps, lower it via {!Trace_ir.build}, and install the
    result on [head.trace_at] (registering every constituent's
    [in_traces] and refreshing their LRU stamps).  Returns [false] when
    [head] is invalid, already promoted, or the path is not lowerable —
    promotion is always a best-effort optimisation, never an error. *)

val note_trace_follow : t -> unit
(** Count a dispatch absorbed by executing a trace. *)

val note_trace_side_exit : t -> unit
(** Count a guard-driven trace side exit (micro-TLB miss, misalignment,
    mid-run severing, or a zero-progress bail). *)

val note_flush : t -> unit
(** Record a TLB/[satp] flush event.  Because entries are keyed by
    physical frame, a translation flush cannot stale them, so nothing is
    dropped; the counter keeps the invalidation matrix observable. *)

val flush : t -> unit
(** Drop everything (e.g. on reset). *)

(** {1 Counters} *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
(** Blocks dropped by {!invalidate_range}/{!invalidate_frame}. *)

val evictions : t -> int
val tlb_flushes : t -> int
(** Flush events observed via {!note_flush}. *)

val chains_patched : t -> int
(** Chain edges installed or replaced via {!set_succ}. *)

val chain_follows : t -> int
(** Dispatches served by chasing a chain edge (no hashtable lookup). *)

val chains_severed : t -> int
(** Chain edges cleared because their target (or, on {!flush},
    everything) was invalidated or evicted. *)

val traces_built : t -> int
(** Superblock traces compiled by {!try_promote}. *)

val trace_follows : t -> int
(** Dispatches served by executing a trace (see {!note_trace_follow}). *)

val traces_severed : t -> int
(** Traces killed because a constituent block was invalidated, evicted
    or replaced (SMC, frame revocation, eviction, {!flush}). *)

val trace_side_exits : t -> int
(** Guard-driven early exits out of executing traces
    (see {!note_trace_side_exit}). *)
