(** Decoded-block translation cache.

    The block execution engine ({!Engine}) avoids the per-instruction
    fetch/decode work of the reference interpreter by caching decoded
    straight-line blocks ({!Velum_isa.Block}).  Entries are keyed by
    where the code {e physically} lives and the execution regime:

    {v (physical frame, byte offset in frame, privilege mode, paging on) v}

    Keying by machine frame (not virtual PC) makes the cache immune to
    remapping: changing a translation never changes the bytes a frame
    holds, so [satp] writes and TLB flushes need not drop entries — only
    {e writes} to a cached frame do (self-modifying code, DMA, swap-in,
    COW copies, migration restores).  The mode and paging bits are in
    the key because future engines may specialise blocks per regime, and
    because they make the key a faithful summary of everything fetch
    depends on besides the bytes.

    Eviction is LRU over a bounded number of blocks.  Invalidation marks
    entries dead in place (so an engine holding a direct reference to a
    block observes the invalidation mid-block) and unlinks them. *)

open Velum_isa

type block = {
  insns : Instr.t array;
  classes : Block.cls array;
  start_off : int;  (** byte offset of [insns.(0)] within its frame *)
  mutable valid : bool;
      (** cleared by invalidation; engines must re-fetch when false *)
  mutable stamp : int;  (** LRU clock *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of cached blocks (default 1024). *)

type key

val key : ppn:int64 -> off:int -> user:bool -> paging:bool -> key
(** [off] is the byte offset of the block start within frame [ppn]. *)

val find : t -> key -> block option
(** Bumps the LRU stamp and the hit counter on success; counts a miss
    otherwise. *)

val insert : t -> key:key -> ppn:int64 -> insns:Instr.t array ->
  classes:Block.cls array -> start_off:int -> block
(** Caches a freshly decoded block, evicting the LRU entry when at
    capacity.  Returns the interned block. *)

val invalidate_range : t -> ppn:int64 -> lo:int -> hi:int -> unit
(** Drop (and mark dead) every block of frame [ppn] whose decoded span
    overlaps the byte range [\[lo, hi)] — called when exactly those
    bytes changed.  Blocks in disjoint parts of the frame survive, so
    data/stack writes into a page that also holds code do not throw the
    code's blocks away. *)

val invalidate_frame : t -> ppn:int64 -> unit
(** [invalidate_range] over the whole frame — for events where the
    changed range is unknown (frame replaced, revoked, or restored). *)

val note_flush : t -> unit
(** Record a TLB/[satp] flush event.  Because entries are keyed by
    physical frame, a translation flush cannot stale them, so nothing is
    dropped; the counter keeps the invalidation matrix observable. *)

val flush : t -> unit
(** Drop everything (e.g. on reset). *)

(** {1 Counters} *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
(** Blocks dropped by {!invalidate_range}/{!invalidate_frame}. *)

val evictions : t -> int
val tlb_flushes : t -> int
(** Flush events observed via {!note_flush}. *)
