(** Decoded-block translation cache.

    The block execution engine ({!Engine}) avoids the per-instruction
    fetch/decode work of the reference interpreter by caching decoded
    straight-line blocks ({!Velum_isa.Block}).  Entries are keyed by
    where the code {e physically} lives and the execution regime:

    {v (physical frame, byte offset in frame, privilege mode, paging on) v}

    Keying by machine frame (not virtual PC) makes the cache immune to
    remapping: changing a translation never changes the bytes a frame
    holds, so [satp] writes and TLB flushes need not drop entries — only
    {e writes} to a cached frame do (self-modifying code, DMA, swap-in,
    COW copies, migration restores).  The mode and paging bits are in
    the key because future engines may specialise blocks per regime, and
    because they make the key a faithful summary of everything fetch
    depends on besides the bytes.

    Eviction is LRU over a bounded number of blocks.  Invalidation marks
    entries dead in place (so an engine holding a direct reference to a
    block observes the invalidation mid-block) and unlinks them. *)

open Velum_isa

type key

type block = {
  key : key;  (** the key this block was interned under *)
  insns : Instr.t array;
  classes : Block.cls array;
  start_off : int;  (** byte offset of [insns.(0)] within its frame *)
  mutable valid : bool;
      (** cleared by invalidation; engines must re-fetch when false *)
  mutable stamp : int;  (** LRU clock *)
  mutable succ_fall : block option;
      (** chained fall-through successor (QEMU-TCG-style); a prediction
          only — {!follow} re-validates before use *)
  mutable succ_taken : block option;  (** chained taken/jump successor *)
  mutable preds : (block * bool) list;
      (** incoming chain edges [(pred, taken)], kept so invalidation can
          sever every edge pointing here *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of cached blocks (default 1024). *)

val key : ppn:int64 -> off:int -> user:bool -> paging:bool -> key
(** [off] is the byte offset of the block start within frame [ppn]. *)

val same_regime_key : block -> key -> bool
(** The block's frame/mode/paging bits match [key]'s (offset ignored). *)

val find : t -> key -> block option
(** Bumps the LRU stamp and the hit counter on success; counts a miss
    otherwise. *)

val insert : t -> key:key -> ppn:int64 -> insns:Instr.t array ->
  classes:Block.cls array -> start_off:int -> block
(** Caches a freshly decoded block, evicting the LRU entry when at
    capacity.  Returns the interned block. *)

val set_succ : t -> from:block -> taken:bool -> target:block -> unit
(** Patch a chain edge: [from]'s fall-through ([taken = false]) or taken
    ([taken = true]) successor slot now points at [target].  Ignored
    unless both blocks are valid and share frame/mode/paging regime.
    Re-patching an edge replaces it (and fixes up [preds]). *)

val follow : t -> from:block -> taken:bool -> key:key -> off:int -> block option
(** Chase a chain edge instead of a hashtable {!find}: returns the
    successor only if it is valid, its regime matches [key] and its span
    contains byte offset [off].  Bumps the LRU stamp and the
    chain-follow counter on success; on [None] the caller falls back to
    {!find} and should re-patch via {!set_succ}. *)

val invalidate_range : t -> ppn:int64 -> lo:int -> hi:int -> unit
(** Drop (and mark dead) every block of frame [ppn] whose decoded span
    overlaps the byte range [\[lo, hi)] — called when exactly those
    bytes changed.  Blocks in disjoint parts of the frame survive, so
    data/stack writes into a page that also holds code do not throw the
    code's blocks away. *)

val invalidate_frame : t -> ppn:int64 -> unit
(** [invalidate_range] over the whole frame — for events where the
    changed range is unknown (frame replaced, revoked, or restored). *)

val note_flush : t -> unit
(** Record a TLB/[satp] flush event.  Because entries are keyed by
    physical frame, a translation flush cannot stale them, so nothing is
    dropped; the counter keeps the invalidation matrix observable. *)

val flush : t -> unit
(** Drop everything (e.g. on reset). *)

(** {1 Counters} *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
(** Blocks dropped by {!invalidate_range}/{!invalidate_frame}. *)

val evictions : t -> int
val tlb_flushes : t -> int
(** Flush events observed via {!note_flush}. *)

val chains_patched : t -> int
(** Chain edges installed or replaced via {!set_succ}. *)

val chain_follows : t -> int
(** Dispatches served by chasing a chain edge (no hashtable lookup). *)

val chains_severed : t -> int
(** Chain edges cleared because their target (or, on {!flush},
    everything) was invalidated or evicted. *)
