let sector_bytes = 512
let reg_cmd = 0x00L
let reg_sector = 0x08L
let reg_count = 0x10L
let reg_dma = 0x18L
let reg_status = 0x20L
let cmd_read = 1L
let cmd_write = 2L
let status_idle = 0L
let status_busy = 1L
let status_done = 2L
let status_error = 3L
let mmio_base = 0x4000_2000L

(* Default latency model: a fixed per-command overhead plus a per-byte
   streaming cost, in cycles. *)
let seek_cycles = 2_000
let cycles_per_byte = 2

type dma = {
  dma_read : int64 -> int -> Bytes.t option;
  dma_write : int64 -> Bytes.t -> bool;
}

type pending = { finish_at : int64; ok : bool }

type t = {
  store : Bytes.t;
  nsectors : int;
  dma : dma;
  mutable sector : int64;
  mutable count : int64;
  mutable dma_addr : int64;
  mutable status : int64;
  mutable pending : pending option;
  mutable irq : bool;
  mutable ops : int;
  mutable errors : int;
  mutable now : int64;
  mutable faults : Velum_util.Fault.t;
  mutable broken : bool; (* a permanent fault fired: fail everything *)
}

let create ?(sectors = 8192) dma =
  if sectors <= 0 then invalid_arg "Blockdev.create: sectors must be positive";
  {
    store = Bytes.make (sectors * sector_bytes) '\000';
    nsectors = sectors;
    dma;
    sector = 0L;
    count = 0L;
    dma_addr = 0L;
    status = status_idle;
    pending = None;
    irq = false;
    ops = 0;
    errors = 0;
    now = 0L;
    faults = Velum_util.Fault.none ();
    broken = false;
  }

let sectors t = t.nsectors
let set_faults t f = t.faults <- f
let error_count t = t.errors

let load t ~sector s =
  let off = sector * sector_bytes in
  if sector < 0 || off + String.length s > Bytes.length t.store then
    invalid_arg "Blockdev.load: out of range";
  Bytes.blit_string s 0 t.store off (String.length s)

let read_back t ~sector ~count =
  let off = sector * sector_bytes in
  let len = count * sector_bytes in
  if sector < 0 || count < 0 || off + len > Bytes.length t.store then
    invalid_arg "Blockdev.read_back: out of range";
  Bytes.sub_string t.store off len

(* Byte-addressed host-side access: the durable snapshot store writes
   records that straddle sector boundaries, and its power-failure model
   cuts a write at an arbitrary *byte*, so sector granularity would hide
   exactly the torn states it must exercise. *)
let pwrite t ~off b ~pos ~len =
  if off < 0 || pos < 0 || len < 0
     || pos + len > Bytes.length b
     || off + len > Bytes.length t.store
  then invalid_arg "Blockdev.pwrite: out of range";
  Bytes.blit b pos t.store off len

let pread t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.store then
    invalid_arg "Blockdev.pread: out of range";
  Bytes.sub t.store off len

let capacity_bytes t = Bytes.length t.store

let valid_range t =
  let s = Int64.to_int t.sector and c = Int64.to_int t.count in
  s >= 0 && c > 0 && s + c <= t.nsectors

let fail_now t =
  t.status <- status_error;
  t.errors <- t.errors + 1;
  t.irq <- true

(* Perform the data movement immediately; expose completion after the
   latency so guests observe an asynchronous device. *)
let start_command t cmd =
  if t.status = status_busy then ()
  else if cmd <> cmd_read && cmd <> cmd_write then
    (* Malformed command: reject immediately, no seek latency. *)
    fail_now t
  else if not (valid_range t) then fail_now t
  else begin
    let module F = Velum_util.Fault in
    if F.fire t.faults F.Blk_permanent ~now:t.now then t.broken <- true;
    let injected =
      if t.broken then begin
        F.observe t.faults F.Blk_permanent;
        true
      end
      else if F.fire t.faults F.Blk_transient ~now:t.now then begin
        F.observe t.faults F.Blk_transient;
        true
      end
      else false
    in
    let s = Int64.to_int t.sector and c = Int64.to_int t.count in
    let off = s * sector_bytes in
    let len = c * sector_bytes in
    let ok =
      if injected then false
      else if cmd = cmd_read then
        t.dma.dma_write t.dma_addr (Bytes.sub t.store off len)
      else begin
        match t.dma.dma_read t.dma_addr len with
        | Some b ->
            Bytes.blit b 0 t.store off len;
            true
        | None -> false
      end
    in
    let latency = seek_cycles + (len * cycles_per_byte) in
    t.status <- status_busy;
    t.pending <- Some { finish_at = Int64.add t.now (Int64.of_int latency); ok }
  end

let tick t now =
  (* ticks may arrive from lagging pCPUs: device time is monotonic *)
  if Int64.unsigned_compare now t.now > 0 then t.now <- now;
  match t.pending with
  | Some { finish_at; ok } when Int64.unsigned_compare t.now finish_at >= 0 ->
      t.pending <- None;
      t.status <- (if ok then status_done else status_error);
      if not ok then t.errors <- t.errors + 1;
      t.ops <- t.ops + 1;
      t.irq <- true
  | _ -> ()

let read_reg t off =
  if off = reg_status then begin
    let v = t.status in
    if t.status = status_done || t.status = status_error then begin
      t.status <- status_idle;
      t.irq <- false
    end;
    v
  end
  else if off = reg_sector then t.sector
  else if off = reg_count then t.count
  else if off = reg_dma then t.dma_addr
  else 0L

let write_reg t off v =
  if off = reg_cmd then start_command t v
  else if off = reg_sector then t.sector <- v
  else if off = reg_count then t.count <- v
  else if off = reg_dma then t.dma_addr <- v

let device ?(base = mmio_base) t =
  {
    Velum_machine.Bus.name = "blockdev";
    base;
    size = 0x100;
    read = (fun off _w -> read_reg t off);
    write = (fun off _w v -> write_reg t off v);
    tick = (fun now -> tick t now);
    pending_irq = (fun () -> t.irq);
  }

let completed_ops t = t.ops
let busy t = t.status = status_busy

let next_completion t =
  match t.pending with None -> None | Some { finish_at; _ } -> Some finish_at
