open Velum_util

let reg_tx_addr = 0x00L
let reg_tx_len = 0x08L
let reg_tx_cmd = 0x10L
let reg_rx_len = 0x18L
let reg_rx_dma = 0x20L
let reg_rx_cmd = 0x28L
let reg_frames_sent = 0x30L
let reg_frames_received = 0x38L
let reg_tx_dropped = 0x40L
let reg_rx_dropped = 0x48L
let reg_rx_overflow = 0x50L
let mmio_base = 0x4000_1000L
let max_frame = 9000

type link_binding = Link.t * Link.endpoint

type t = {
  link : Link.t;
  endpoint : Link.endpoint;
  dma : Blockdev.dma;
  rx : string Ring.t;
  mutable tx_addr : int64;
  mutable tx_len : int64;
  mutable rx_dma : int64;
  mutable sent : int;
  mutable received : int;
  mutable tx_dropped : int;
  mutable rx_dropped : int;
  mutable rx_overflow : int;
  mutable now : int64;
}

let create ~link ~endpoint ~dma ?(rx_capacity = 256) () =
  {
    link;
    endpoint;
    dma;
    rx = Ring.create ~capacity:rx_capacity;
    tx_addr = 0L;
    tx_len = 0L;
    rx_dma = 0L;
    sent = 0;
    received = 0;
    tx_dropped = 0;
    rx_dropped = 0;
    rx_overflow = 0;
    now = 0L;
  }

(* [sent] counts frames actually handed to the wire; everything else a
   TX doorbell can do to a frame (bad length, unreadable DMA source)
   lands in [tx_dropped].  Wire losses are the link's to count. *)
let transmit t =
  let len = Int64.to_int t.tx_len in
  if len <= 0 || len > max_frame then t.tx_dropped <- t.tx_dropped + 1
  else
    match t.dma.dma_read t.tx_addr len with
    | Some frame ->
        ignore
          (Link.send t.link ~from:t.endpoint ~now:t.now ~payload:(Bytes.to_string frame));
        t.sent <- t.sent + 1
    | None -> t.tx_dropped <- t.tx_dropped + 1

(* The frame leaves the queue either delivered ([received]) or counted
   ([rx_dropped]) — never destroyed silently by a bad RX_DMA target. *)
let receive t =
  match Ring.pop t.rx with
  | Some frame ->
      if t.dma.dma_write t.rx_dma (Bytes.of_string frame) then
        t.received <- t.received + 1
      else t.rx_dropped <- t.rx_dropped + 1
  | None -> ()

let tick t now =
  if Int64.unsigned_compare now t.now > 0 then t.now <- now;
  List.iter
    (fun frame ->
      if not (Ring.push t.rx frame) then t.rx_overflow <- t.rx_overflow + 1)
    (Link.poll t.link ~at:t.endpoint ~now:t.now)

let read_reg t off =
  if off = reg_rx_len then
    match Ring.peek t.rx with
    | Some frame -> Int64.of_int (String.length frame)
    | None -> 0L
  else if off = reg_frames_sent then Int64.of_int t.sent
  else if off = reg_frames_received then Int64.of_int t.received
  else if off = reg_tx_dropped then Int64.of_int t.tx_dropped
  else if off = reg_rx_dropped then Int64.of_int t.rx_dropped
  else if off = reg_rx_overflow then Int64.of_int t.rx_overflow
  else if off = reg_tx_addr then t.tx_addr
  else if off = reg_tx_len then t.tx_len
  else if off = reg_rx_dma then t.rx_dma
  else 0L

let write_reg t off v =
  if off = reg_tx_addr then t.tx_addr <- v
  else if off = reg_tx_len then t.tx_len <- v
  else if off = reg_tx_cmd then transmit t
  else if off = reg_rx_dma then t.rx_dma <- v
  else if off = reg_rx_cmd then receive t

let device ?(base = mmio_base) t =
  {
    Velum_machine.Bus.name = "nic";
    base;
    size = 0x100;
    read = (fun off _w -> read_reg t off);
    write = (fun off _w v -> write_reg t off v);
    tick = (fun now -> tick t now);
    pending_irq = (fun () -> not (Ring.is_empty t.rx));
  }

let frames_sent t = t.sent
let frames_received t = t.received
let tx_dropped t = t.tx_dropped
let rx_dropped t = t.rx_dropped
let rx_overflow t = t.rx_overflow
let rx_queue_length t = Ring.length t.rx
let next_arrival t = Link.next_arrival t.link ~at:t.endpoint
let link t = t.link
