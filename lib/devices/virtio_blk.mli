(** Paravirtual block device over a {!Virtio_ring}.

    Register layout (offsets from base):
    - [0x00] KICK — any write makes the device consume every pending
      descriptor (the single exit per batch)
    - [0x08] ISR — reads 1 while a completion interrupt is pending;
      reading acknowledges it
    - [0x10] RING_BASE / [0x18] RING_SIZE — written once by the guest
      driver before first use

    Request kinds: [1] read sectors, [2] write sectors; [arg] is the
    first sector; the data buffer must be [len] bytes ([len] a multiple
    of the sector size).  On completion the device writes one status byte
    (0 = OK, 1 = error) at [status_gpa] and raises the interrupt.

    The latency model matches {!Blockdev} (one seek per {e batch} plus a
    per-byte cost) so emulated-vs-paravirtual comparisons isolate the
    exit overhead rather than different storage speeds. *)

val reg_kick : int64
val reg_isr : int64
val reg_ring_base : int64
val reg_ring_size : int64

val kind_read : int64
val kind_write : int64

val mmio_base : int64
(** Conventional base address ([0x4000_3000]). *)

type t

val create : ?sectors:int -> Virtio_ring.guest_mem -> t

val sectors : t -> int
val load : t -> sector:int -> string -> unit
val read_back : t -> sector:int -> count:int -> string

val set_faults : t -> Velum_util.Fault.t -> unit
(** Attach a fault plan.  [Blk_transient] fails individual descriptors
    (status byte 1); [Blk_permanent] breaks the device for good. *)

val device : ?base:int64 -> t -> Velum_machine.Bus.device
val completed_ops : t -> int

val error_count : t -> int
(** Descriptors completed with status byte 1. *)

val kicks : t -> int
val next_completion : t -> int64 option
