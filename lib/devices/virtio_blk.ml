let reg_kick = 0x00L
let reg_isr = 0x08L
let reg_ring_base = 0x10L
let reg_ring_size = 0x18L
let kind_read = 1L
let kind_write = 2L
let mmio_base = 0x4000_3000L

let sector_bytes = Blockdev.sector_bytes
let seek_cycles = 2_000
let cycles_per_byte = 2

(* A batch completes every slot it consumed — malformed slots included,
   otherwise the in-order used index desynchronizes from avail and the
   guest spins on a status byte that will never be written. *)
type completion =
  | Exec of int64 * bool (* status_gpa, ok *)
  | Bad_slot of int64 (* free-running ring index of a malformed slot *)

type batch = { finish_at : int64; completions : completion list }

type t = {
  store : Bytes.t;
  nsectors : int;
  mem : Virtio_ring.guest_mem;
  mutable ring : Virtio_ring.t option;
  mutable ring_base : int64;
  mutable ring_size : int64;
  mutable batches : batch list; (* oldest first *)
  mutable irq : bool;
  mutable ops : int;
  mutable error_count : int;
  mutable kick_count : int;
  mutable now : int64;
  mutable faults : Velum_util.Fault.t;
  mutable broken : bool; (* a permanent fault fired: fail everything *)
}

let create ?(sectors = 8192) mem =
  if sectors <= 0 then invalid_arg "Virtio_blk.create: sectors must be positive";
  {
    store = Bytes.make (sectors * sector_bytes) '\000';
    nsectors = sectors;
    mem;
    ring = None;
    ring_base = 0L;
    ring_size = 0L;
    batches = [];
    irq = false;
    ops = 0;
    error_count = 0;
    kick_count = 0;
    now = 0L;
    faults = Velum_util.Fault.none ();
    broken = false;
  }

let sectors t = t.nsectors
let set_faults t f = t.faults <- f
let error_count t = t.error_count

let load t ~sector s =
  let off = sector * sector_bytes in
  if sector < 0 || off + String.length s > Bytes.length t.store then
    invalid_arg "Virtio_blk.load: out of range";
  Bytes.blit_string s 0 t.store off (String.length s)

let read_back t ~sector ~count =
  let off = sector * sector_bytes in
  let len = count * sector_bytes in
  if sector < 0 || count < 0 || off + len > Bytes.length t.store then
    invalid_arg "Virtio_blk.read_back: out of range";
  Bytes.sub_string t.store off len

let setup_ring t =
  match t.ring with
  | Some r -> Some r
  | None ->
      let size = Int64.to_int t.ring_size in
      if size > 0 && size land (size - 1) = 0 then begin
        let r = Virtio_ring.create ~mem:t.mem ~base:t.ring_base ~size in
        t.ring <- Some r;
        Some r
      end
      else None

(* Execute one descriptor against the backing store; data moves now,
   completion (status byte + used index) is deferred to the batch's
   finish time. *)
let exec_desc t (d : Virtio_ring.desc) =
  let module F = Velum_util.Fault in
  if F.fire t.faults F.Blk_permanent ~now:t.now then t.broken <- true;
  let injected =
    if t.broken then begin
      F.observe t.faults F.Blk_permanent;
      true
    end
    else if F.fire t.faults F.Blk_transient ~now:t.now then begin
      F.observe t.faults F.Blk_transient;
      true
    end
    else false
  in
  let sector = Int64.to_int d.arg in
  let len = d.data_len in
  let ok =
    (not injected)
    && len > 0
    && len mod sector_bytes = 0
    && sector >= 0
    && (sector * sector_bytes) + len <= Bytes.length t.store
    &&
    if d.kind = kind_read then
      t.mem.write_bytes d.data_gpa (Bytes.sub t.store (sector * sector_bytes) len)
    else if d.kind = kind_write then begin
      match t.mem.read_bytes d.data_gpa len with
      | Some b ->
          Bytes.blit b 0 t.store (sector * sector_bytes) len;
          true
      | None -> false
    end
    else false
  in
  (d.status_gpa, ok, len)

let kick t =
  t.kick_count <- t.kick_count + 1;
  match setup_ring t with
  | None -> ()
  | Some ring ->
      let slots = Virtio_ring.pending_slots ring in
      if slots <> [] then begin
        let results =
          List.map
            (fun (idx, d) ->
              match d with
              | Some d ->
                  let gpa, ok, len = exec_desc t d in
                  (Exec (gpa, ok), len)
              | None -> (Bad_slot idx, 0))
            slots
        in
        let total_bytes = List.fold_left (fun acc (_, len) -> acc + len) 0 results in
        let latency = seek_cycles + (total_bytes * cycles_per_byte) in
        let completions = List.map fst results in
        t.batches <-
          t.batches @ [ { finish_at = Int64.add t.now (Int64.of_int latency); completions } ]
      end

let finish_batch t b =
  List.iter
    (function
      | Exec (status_gpa, ok) ->
          if not ok then t.error_count <- t.error_count + 1;
          ignore
            (t.mem.write_bytes status_gpa (Bytes.make 1 (if ok then '\000' else '\001')))
      | Bad_slot idx ->
          t.error_count <- t.error_count + 1;
          Option.iter (fun ring -> Virtio_ring.fail_slot ring idx) t.ring)
    b.completions;
  (match t.ring with
  | Some ring -> Virtio_ring.complete ring ~count:(List.length b.completions)
  | None -> ());
  t.ops <- t.ops + List.length b.completions;
  t.irq <- true

let tick t now =
  if Int64.unsigned_compare now t.now > 0 then t.now <- now;
  let rec drain () =
    match t.batches with
    | b :: rest when Int64.unsigned_compare t.now b.finish_at >= 0 ->
        t.batches <- rest;
        finish_batch t b;
        drain ()
    | _ -> ()
  in
  drain ()

let read_reg t off =
  if off = reg_isr then begin
    let v = if t.irq then 1L else 0L in
    t.irq <- false;
    v
  end
  else if off = reg_ring_base then t.ring_base
  else if off = reg_ring_size then t.ring_size
  else 0L

let write_reg t off v =
  if off = reg_kick then kick t
  else if off = reg_ring_base then begin
    t.ring_base <- v;
    t.ring <- None
  end
  else if off = reg_ring_size then begin
    t.ring_size <- v;
    t.ring <- None
  end

let device ?(base = mmio_base) t =
  {
    Velum_machine.Bus.name = "virtio-blk";
    base;
    size = 0x100;
    read = (fun off _w -> read_reg t off);
    write = (fun off _w v -> write_reg t off v);
    tick = (fun now -> tick t now);
    pending_irq = (fun () -> t.irq);
  }

let completed_ops t = t.ops
let kicks t = t.kick_count

let next_completion t =
  match t.batches with [] -> None | b :: _ -> Some b.finish_at
