(** Point-to-point network link with bandwidth, latency and serialization.

    Connects two endpoints ([`A] and [`B]).  A frame sent at cycle [t]
    arrives at the peer at
    [max(t, line_free) + bytes/bandwidth + latency]; the line then stays
    busy for the frame's serialization time, so back-to-back senders see
    queueing.  Live migration charges its transfer times through this
    model; NICs carry guest frames over it. *)

type endpoint = [ `A | `B ]

val peer : endpoint -> endpoint

type t

val create : ?bytes_per_cycle:float -> ?latency_cycles:int -> unit -> t
(** Defaults: 1.25 bytes/cycle and 2000 cycles of latency — with a
    nominal 1 GHz cycle this models a 10 Gb/s link with 2 µs one-way
    delay.

    @raise Invalid_argument on non-positive bandwidth or negative
    latency. *)

val bytes_per_cycle : t -> float
val latency_cycles : t -> int

val transfer_cycles : t -> bytes:int -> int
(** [transfer_cycles t ~bytes] is the unloaded one-way time for a
    transfer of [bytes]: serialization + latency. *)

val set_faults : t -> Velum_util.Fault.t -> unit
(** [set_faults t f] attaches a fault plan.  Each [send] then consults it
    (in a fixed order: partition, drop, corrupt, delay, duplicate) so that
    equal seeds give byte-identical loss schedules.  Dropped frames still
    consume line time and still return an arrival estimate — the sender
    cannot tell; the link books the loss in {!wire_dropped} and only
    [poll] reveals it to the receiver. *)

val faults : t -> Velum_util.Fault.t
(** The currently attached plan ([Fault.none ()] by default). *)

val send : t -> from:endpoint -> now:int64 -> payload:string -> int64
(** [send t ~from ~now ~payload] enqueues a frame toward the peer and
    returns its arrival time. *)

val send_control : t -> from:endpoint -> now:int64 -> payload:string -> int64
(** Like {!send} but on the control lane (heartbeats, takeover
    announcements): pays propagation latency only, does not contend with
    the bulk stream's serialization, and is only visible to
    {!poll_control} — a bulk receiver can never swallow a control frame.
    Fault sites ([drop], [corrupt], [delay], [partition]) apply
    identically; the wire does not care what a frame means. *)

val poll_control : t -> at:endpoint -> now:int64 -> string list
(** Control-lane counterpart of {!poll}. *)

val poll : t -> at:endpoint -> now:int64 -> string list
(** [poll t ~at ~now] removes and returns the frames that have arrived at
    [at] by [now], in arrival order. *)

val next_arrival : t -> at:endpoint -> int64 option
(** Earliest pending arrival time at [at]. *)

val in_flight : t -> int
(** Total queued frames in both directions. *)

val queued : t -> at:endpoint -> int
(** [queued t ~at] is the number of data-lane frames currently in flight
    toward [at] (sent but not yet polled).  Switch ports use it as the
    egress queue depth for bounded-queue admission. *)

val wire_dropped : t -> int
(** Data-lane frames lost in flight (partition or drop faults).  Control
    lane losses are not counted here. *)

val wire_duplicated : t -> int
(** Extra data-lane frame copies created by duplicate faults.  A frame
    conservation audit closes as:
    sent = polled + queued + wire_dropped - wire_duplicated. *)

val bytes_sent : t -> int
(** Total payload bytes ever sent (both directions). *)
