(** Network interface with a register/DMA ("fully emulated") front end.

    Each NIC is bound to one endpoint of a {!Link}.  Transmit: the guest
    writes the frame's guest-physical address and length, then the TX
    doorbell; the device DMAs the frame out and puts it on the wire.
    Receive: arrived frames queue in the device; the guest reads RX_LEN
    (0 = nothing pending), writes a buffer address to RX_DMA and the RX
    doorbell; the device DMAs the frame in.  The interrupt line is up
    while the receive queue is non-empty.

    Frame accounting is conservative: every frame a doorbell touches is
    either delivered or lands in a named counter.  A TX doorbell with a
    bad length or unreadable DMA source counts [tx_dropped]; an RX
    doorbell whose DMA target is unwritable consumes the frame into
    [rx_dropped] (never silently); arrivals that find the device queue
    full count [rx_overflow].  Frames lost {e on the wire} are the
    link's to count ({!Link.wire_dropped}), so across a NIC pair:
    sent + dup = received + rx_dropped + rx_overflow + queued + wire_dropped.

    Register layout (offsets from base):
    - [0x00] TX_ADDR, [0x08] TX_LEN, [0x10] TX_CMD (doorbell)
    - [0x18] RX_LEN (read), [0x20] RX_DMA, [0x28] RX_CMD (doorbell)
    - [0x30] FRAMES_SENT (read), [0x38] FRAMES_RECEIVED (read)
    - [0x40] TX_DROPPED (read), [0x48] RX_DROPPED (read),
      [0x50] RX_OVERFLOW (read) *)

val reg_tx_addr : int64
val reg_tx_len : int64
val reg_tx_cmd : int64
val reg_rx_len : int64
val reg_rx_dma : int64
val reg_rx_cmd : int64
val reg_frames_sent : int64
val reg_frames_received : int64
val reg_tx_dropped : int64
val reg_rx_dropped : int64
val reg_rx_overflow : int64

val mmio_base : int64
(** Conventional base address ([0x4000_1000]). *)

val max_frame : int

type link_binding = Link.t * Link.endpoint
(** Which link and which end of it a NIC is plugged into. *)

type t

val create :
  link:Link.t -> endpoint:Link.endpoint -> dma:Blockdev.dma -> ?rx_capacity:int -> unit -> t

val device : ?base:int64 -> t -> Velum_machine.Bus.device

val frames_sent : t -> int
(** Frames actually handed to the wire (the link may still lose them —
    see {!Link.wire_dropped}). *)

val frames_received : t -> int
(** Frames DMAed into guest memory. *)

val tx_dropped : t -> int
(** TX doorbells that produced no wire frame: length out of range or
    DMA-read failure. *)

val rx_dropped : t -> int
(** Frames consumed by an RX doorbell whose DMA write failed (bad/unset
    RX_DMA) — counted, never silently destroyed. *)

val rx_overflow : t -> int
(** Arrivals discarded because the device receive queue was full. *)

val rx_queue_length : t -> int

val next_arrival : t -> int64 option
(** Earliest cycle at which a frame will arrive from the wire. *)

val link : t -> Link.t
(** The wire this NIC is plugged into (for conservation audits). *)
