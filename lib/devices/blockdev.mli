(** Block storage device with a register/DMA ("fully emulated") front end.

    The device owns a byte-addressable backing store in 512-byte sectors
    and moves data to and from guest memory through DMA callbacks, so the
    same model serves a native machine (identity DMA into RAM) and a
    virtual machine (DMA through the VMM's physical-to-machine map).

    Register layout (64-bit, offsets from base):
    - [0x00] CMD     — write 1 = read sectors, 2 = write sectors; starts
      the operation
    - [0x08] SECTOR  — first sector number
    - [0x10] COUNT   — number of sectors
    - [0x18] DMA     — guest-physical buffer address
    - [0x20] STATUS  — 0 idle, 1 busy, 2 done, 3 error (read clears a
      completed status back to idle and acknowledges the interrupt)

    Completion is asynchronous: the operation finishes
    [seek_cycles + bytes * cycles_per_byte] cycles after the command, at
    which point the interrupt line rises until STATUS is read. *)

val sector_bytes : int

val reg_cmd : int64
val reg_sector : int64
val reg_count : int64
val reg_dma : int64
val reg_status : int64

val cmd_read : int64
val cmd_write : int64

val status_idle : int64
val status_busy : int64
val status_done : int64
val status_error : int64

val mmio_base : int64
(** Conventional base address ([0x4000_2000]). *)

type dma = {
  dma_read : int64 -> int -> Bytes.t option;
      (** [dma_read gpa len] fetches guest memory; [None] = bad address *)
  dma_write : int64 -> Bytes.t -> bool;
}

type t

val create : ?sectors:int -> dma -> t
(** [create ~sectors dma] — default 8192 sectors (4 MiB). *)

val sectors : t -> int

val load : t -> sector:int -> string -> unit
(** [load t ~sector s] writes [s] into the backing store directly (host
    side, no latency).

    @raise Invalid_argument if out of range. *)

val read_back : t -> sector:int -> count:int -> string
(** Direct host-side read of the backing store. *)

val pwrite : t -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** [pwrite t ~off b ~pos ~len] writes [len] bytes of [b] (from [pos])
    into the backing store at byte offset [off] — host side, no latency,
    byte granularity (the durable snapshot store's power-failure model
    truncates writes at arbitrary byte offsets).

    @raise Invalid_argument if out of range. *)

val pread : t -> off:int -> len:int -> Bytes.t
(** Host-side byte-addressed read.

    @raise Invalid_argument if out of range. *)

val capacity_bytes : t -> int
(** Backing-store size in bytes ([sectors * sector_bytes]). *)

val device : ?base:int64 -> t -> Velum_machine.Bus.device

val set_faults : t -> Velum_util.Fault.t -> unit
(** Attach a fault plan.  [Blk_transient] fails one command (a retry may
    succeed); [Blk_permanent] breaks the device — every later command
    completes with [status_error] until the simulation ends. *)

val completed_ops : t -> int
(** Number of operations completed since creation. *)

val error_count : t -> int
(** Number of commands that ended in [status_error] (malformed commands,
    failed DMA, and injected faults alike). *)

val busy : t -> bool

val next_completion : t -> int64 option
(** Cycle at which the in-flight operation finishes, if any (lets a
    waiting machine fast-forward its clock). *)
