(** Paravirtual network device on two {!Virtio_ring}s.

    The guest programs a TX ring and an RX ring (separate rings so a
    stalled receive path never head-of-line-blocks transmits through the
    in-order used index), then:

    {b TX} — publish a batch of descriptors, bump avail, write the TX
    doorbell {e once}: the device consumes every pending slot in one
    pass, so a burst of n frames costs one VM exit (doorbell
    coalescing).  Descriptor = frame bytes at [data_gpa, data_len);
    status word gets [1] on error, stays [0] on success (completion is
    signalled by the used index, not the status).

    {b RX} — post empty buffer descriptors; the device polls the wire
    and the avail index on its own tick, delivers frames in order and
    writes a length-carrying status word [(len lsl 8)].  Reposting
    buffers is a plain store; the whole receive path costs {e zero} VM
    exits.

    Accounting is conservative, like {!Nic}: every frame is delivered or
    counted ([tx_dropped]/[tx_malformed]/[rx_dropped]/[rx_malformed]/
    [rx_overflow]); wire losses are the link's ({!Link.wire_dropped}).

    Register layout (offsets from base):
    - [0x00] TX_KICK (doorbell), [0x08] ISR (read-to-clear)
    - [0x10] TX_RING_BASE, [0x18] TX_RING_SIZE
    - [0x20] RX_RING_BASE, [0x28] RX_RING_SIZE
    - [0x30] SENT, [0x38] RECEIVED, [0x40] TX_DROPPED,
      [0x48] RX_DROPPED, [0x50] RX_OVERFLOW, [0x58] KICKS (all read) *)

val reg_tx_kick : int64
val reg_isr : int64
val reg_tx_ring_base : int64
val reg_tx_ring_size : int64
val reg_rx_ring_base : int64
val reg_rx_ring_size : int64
val reg_sent : int64
val reg_received : int64
val reg_tx_dropped : int64
val reg_rx_dropped : int64
val reg_rx_overflow : int64
val reg_kicks : int64

val mmio_base : int64
(** Conventional base address ([0x4000_4000]). *)

val max_frame : int

type t

val create :
  link:Link.t ->
  endpoint:Link.endpoint ->
  mem:Virtio_ring.guest_mem ->
  ?backlog_capacity:int ->
  unit ->
  t

val device : ?base:int64 -> t -> Velum_machine.Bus.device

val kick : t -> unit
(** Host-side doorbell (tests). *)

val tick : t -> int64 -> unit

val configure :
  t -> tx_base:int64 -> tx_size:int -> rx_base:int64 -> rx_size:int -> unit
(** Program both rings host-side — how a migration destination
    re-attaches the device to the already-copied guest ring pages
    without replaying the source's MMIO writes. *)

val drain_backlog : t -> string list
(** Remove and return undelivered arrived frames (device-state handoff
    at migration time). *)

val seed_backlog : t -> string list -> unit
(** Enqueue handed-over frames; overflow is counted, never silent. *)

val frames_sent : t -> int
val frames_received : t -> int

val tx_dropped : t -> int
(** Well-formed TX descriptors that produced no wire frame (bad length
    or unreadable payload). *)

val tx_malformed : t -> int
(** TX slots whose descriptor words were unreadable — failed via
    {!Virtio_ring.fail_slot} and completed past. *)

val rx_dropped : t -> int
(** Frames consumed against a buffer that could not take them (too
    small, or DMA write failed). *)

val rx_malformed : t -> int
(** RX buffer slots with unreadable descriptor words (consumes the slot,
    not a frame). *)

val rx_overflow : t -> int
(** Arrivals discarded because the device backlog was full. *)

val kicks : t -> int
(** TX doorbell writes — [frames_sent / kicks] is the coalescing
    ratio. *)

val backlog_length : t -> int

val next_arrival : t -> int64 option
(** Earliest cycle at which a frame will arrive from the wire. *)

val link : t -> Link.t
(** The wire (for conservation audits). *)
