type guest_mem = {
  read_u64 : int64 -> int64 option;
  write_u64 : int64 -> int64 -> bool;
  read_bytes : int64 -> int -> Bytes.t option;
  write_bytes : int64 -> Bytes.t -> bool;
}

type desc = {
  data_gpa : int64;
  data_len : int;
  kind : int64;
  arg : int64;
  status_gpa : int64;
}

let desc_stride = 40
let header_bytes = 16

let ring_bytes ~size = header_bytes + (size * desc_stride)

type t = { mem : guest_mem; base_addr : int64; ring_size : int }

let create ~mem ~base ~size =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Virtio_ring.create: size must be a positive power of two";
  { mem; base_addr = base; ring_size = size }

let size t = t.ring_size
let base t = t.base_addr

let avail_addr t = t.base_addr
let used_addr t = Int64.add t.base_addr 8L

let slot_addr t idx =
  let slot = Int64.to_int (Int64.rem idx (Int64.of_int t.ring_size)) in
  Int64.add t.base_addr (Int64.of_int (header_bytes + (slot * desc_stride)))

let read_u64_or_zero t addr = Option.value (t.mem.read_u64 addr) ~default:0L

let avail_idx t = read_u64_or_zero t (avail_addr t)
let used_idx t = read_u64_or_zero t (used_addr t)

let read_desc t idx =
  let a = slot_addr t idx in
  let ( let* ) = Option.bind in
  let* data_gpa = t.mem.read_u64 a in
  let* len = t.mem.read_u64 (Int64.add a 8L) in
  let* kind = t.mem.read_u64 (Int64.add a 16L) in
  let* arg = t.mem.read_u64 (Int64.add a 24L) in
  let* status_gpa = t.mem.read_u64 (Int64.add a 32L) in
  Some { data_gpa; data_len = Int64.to_int len; kind; arg; status_gpa }

let pending_slots t =
  let avail = avail_idx t and used = used_idx t in
  let n = Int64.to_int (Int64.sub avail used) in
  if n <= 0 || n > t.ring_size then []
  else
    List.map
      (fun i ->
        let idx = Int64.add used (Int64.of_int i) in
        (idx, read_desc t idx))
      (List.init n Fun.id)

let pending t = List.filter_map snd (pending_slots t)

let complete t ~count =
  let used = used_idx t in
  ignore (t.mem.write_u64 (used_addr t) (Int64.add used (Int64.of_int count)))

(* A malformed slot still owes the guest a completion: the used index
   must advance past it (the caller counts it in [complete ~count]) and
   its status byte — if the status pointer itself is readable — gets an
   error so the guest's poll loop terminates instead of spinning on a
   status that will never be written. *)
let error_status = '\001'

let fail_slot t idx =
  match t.mem.read_u64 (Int64.add (slot_addr t idx) 32L) with
  | Some status_gpa ->
      ignore (t.mem.write_bytes status_gpa (Bytes.make 1 error_status))
  | None -> ()

let guest_push t d =
  let avail = avail_idx t and used = used_idx t in
  if Int64.to_int (Int64.sub avail used) >= t.ring_size then false
  else begin
    let a = slot_addr t avail in
    let ok =
      t.mem.write_u64 a d.data_gpa
      && t.mem.write_u64 (Int64.add a 8L) (Int64.of_int d.data_len)
      && t.mem.write_u64 (Int64.add a 16L) d.kind
      && t.mem.write_u64 (Int64.add a 24L) d.arg
      && t.mem.write_u64 (Int64.add a 32L) d.status_gpa
    in
    ok && t.mem.write_u64 (avail_addr t) (Int64.add avail 1L)
  end
