(* Software L2 switch: N ports, each the [`B] end of a point-to-point
   {!Link} whose [`A] end is a VM's NIC.  Forwarding is store-and-poll:
   each tick drains every port's arrivals in port order and re-enqueues
   them toward their destination port, so contention, queueing and loss
   all happen on the per-port links and every non-forwarded frame lands
   in a named drop counter. *)

let broadcast_mac = -1L (* ff:ff:ff:ff:ff:ff:ff:ff *)
let header_bytes = 16 (* dst mac u64 + src mac u64; shorter = runt *)

let mac_dst frame = String.get_int64_le frame 0
let mac_src frame = String.get_int64_le frame 8

type t = {
  ports : Link.t array;
  macs : (int64, int) Hashtbl.t;
  queue_cap : int;
  snoop : (int -> int64 -> string -> unit) option ref;
  mutable in_frames : int;
  mutable out_frames : int;
  mutable flood_extra : int;
  mutable drop_unknown : int;
  mutable drop_reflect : int;
  mutable drop_runt : int;
  mutable drop_queue_full : int;
  mutable now : int64;
}

let create ?(queue_cap = 64) ports =
  if Array.length ports = 0 then invalid_arg "Switch.create: no ports";
  if queue_cap <= 0 then invalid_arg "Switch.create: queue_cap must be positive";
  {
    ports;
    macs = Hashtbl.create 16;
    queue_cap;
    snoop = ref None;
    in_frames = 0;
    out_frames = 0;
    flood_extra = 0;
    drop_unknown = 0;
    drop_reflect = 0;
    drop_runt = 0;
    drop_queue_full = 0;
    now = 0L;
  }

let port_count t = Array.length t.ports
let port t i = t.ports.(i)
let learn t ~mac ~port = Hashtbl.replace t.macs mac port
let lookup t mac = Hashtbl.find_opt t.macs mac
let set_snoop t f = t.snoop := f

(* Bounded egress: a full queue toward the VM is an explicit drop, not
   unbounded buffering. *)
let egress t i frame =
  let link = t.ports.(i) in
  if Link.queued link ~at:`A >= t.queue_cap then
    t.drop_queue_full <- t.drop_queue_full + 1
  else begin
    ignore (Link.send link ~from:`B ~now:t.now ~payload:frame);
    t.out_frames <- t.out_frames + 1;
    match !(t.snoop) with Some f -> f i t.now frame | None -> ()
  end

let ingress t i frame =
  t.in_frames <- t.in_frames + 1;
  if String.length frame < header_bytes then t.drop_runt <- t.drop_runt + 1
  else begin
    let dst = mac_dst frame and src = mac_src frame in
    learn t ~mac:src ~port:i;
    if dst = broadcast_mac then begin
      let copies = port_count t - 1 in
      if copies > 1 then t.flood_extra <- t.flood_extra + (copies - 1);
      Array.iteri (fun j _ -> if j <> i then egress t j frame) t.ports
    end
    else
      match lookup t dst with
      | None -> t.drop_unknown <- t.drop_unknown + 1
      | Some j when j = i -> t.drop_reflect <- t.drop_reflect + 1
      | Some j -> egress t j frame
  end

let tick t now =
  (* Two hypervisors can share a switch during a live migration; their
     clocks only ever move this one forward. *)
  if Int64.unsigned_compare now t.now > 0 then t.now <- now;
  Array.iteri
    (fun i link ->
      List.iter (ingress t i) (Link.poll link ~at:`B ~now:t.now))
    t.ports

let next_event t =
  Array.fold_left
    (fun acc link ->
      match (Link.next_arrival link ~at:`B, acc) with
      | None, acc -> acc
      | Some a, None -> Some a
      | Some a, Some b -> Some (if Int64.unsigned_compare a b < 0 then a else b))
    None t.ports

let in_frames t = t.in_frames
let out_frames t = t.out_frames
let flood_extra t = t.flood_extra
let drop_unknown t = t.drop_unknown
let drop_reflect t = t.drop_reflect
let drop_runt t = t.drop_runt
let drop_queue_full t = t.drop_queue_full

let drops t = t.drop_unknown + t.drop_reflect + t.drop_runt + t.drop_queue_full

(* Conservation: every ingress frame (plus flood copies) either left on
   a port or is in a named counter. *)
let conserved t = t.in_frames + t.flood_extra = t.out_frames + drops t

let pp ppf t =
  Format.fprintf ppf
    "switch: in=%d out=%d flood_extra=%d drop{unknown=%d reflect=%d runt=%d \
     queue_full=%d}"
    t.in_frames t.out_frames t.flood_extra t.drop_unknown t.drop_reflect
    t.drop_runt t.drop_queue_full
