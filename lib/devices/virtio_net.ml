open Velum_util

let reg_tx_kick = 0x00L
let reg_isr = 0x08L
let reg_tx_ring_base = 0x10L
let reg_tx_ring_size = 0x18L
let reg_rx_ring_base = 0x20L
let reg_rx_ring_size = 0x28L
let reg_sent = 0x30L
let reg_received = 0x38L
let reg_tx_dropped = 0x40L
let reg_rx_dropped = 0x48L
let reg_rx_overflow = 0x50L
let reg_kicks = 0x58L
let mmio_base = 0x4000_4000L
let max_frame = 9000

(* Status words (the guest zeroes its status array, so 0 = not yet
   completed).  TX: 0 stays "ok" after completion — the guest tracks
   completion by the used index, not the status — and 1 flags an error
   (matching [Virtio_ring.error_status], which [fail_slot] writes as a
   single byte).  RX: length-carrying, [(len lsl 8)] on delivery; frames
   are never empty so a delivered status is never 0. *)
let status_error = 1L

type t = {
  link : Link.t;
  endpoint : Link.endpoint;
  mem : Virtio_ring.guest_mem;
  mutable tx_base : int64;
  mutable tx_size : int64;
  mutable rx_base : int64;
  mutable rx_size : int64;
  mutable tx_ring : Virtio_ring.t option;
  mutable rx_ring : Virtio_ring.t option;
  backlog : string Ring.t; (* arrived, awaiting a guest rx buffer *)
  mutable irq : bool;
  mutable sent : int;
  mutable received : int;
  mutable tx_dropped : int;
  mutable tx_malformed : int;
  mutable rx_dropped : int;
  mutable rx_malformed : int;
  mutable rx_overflow : int;
  mutable kick_count : int;
  mutable now : int64;
}

let create ~link ~endpoint ~mem ?(backlog_capacity = 256) () =
  {
    link;
    endpoint;
    mem;
    tx_base = 0L;
    tx_size = 0L;
    rx_base = 0L;
    rx_size = 0L;
    tx_ring = None;
    rx_ring = None;
    backlog = Ring.create ~capacity:backlog_capacity;
    irq = false;
    sent = 0;
    received = 0;
    tx_dropped = 0;
    tx_malformed = 0;
    rx_dropped = 0;
    rx_malformed = 0;
    rx_overflow = 0;
    kick_count = 0;
    now = 0L;
  }

let make_ring t ~base ~size =
  let size = Int64.to_int size in
  if size > 0 && size land (size - 1) = 0 then
    Some (Virtio_ring.create ~mem:t.mem ~base ~size)
  else None

let tx_ring t =
  match t.tx_ring with
  | Some _ as r -> r
  | None ->
      t.tx_ring <- make_ring t ~base:t.tx_base ~size:t.tx_size;
      t.tx_ring

let rx_ring t =
  match t.rx_ring with
  | Some _ as r -> r
  | None ->
      t.rx_ring <- make_ring t ~base:t.rx_base ~size:t.rx_size;
      t.rx_ring

let write_status t (d : Virtio_ring.desc) v = ignore (t.mem.write_u64 d.status_gpa v)

(* One TX doorbell consumes the whole published batch: every slot in
   [used, avail) is executed (or failed) and completed in a single pass,
   so a burst of n frames costs the guest one VM exit. *)
let consume_tx t =
  match tx_ring t with
  | None -> ()
  | Some ring ->
      let slots = Virtio_ring.pending_slots ring in
      if slots <> [] then begin
        List.iter
          (fun (idx, d) ->
            match d with
            | None ->
                t.tx_malformed <- t.tx_malformed + 1;
                Virtio_ring.fail_slot ring idx
            | Some d ->
                let len = d.Virtio_ring.data_len in
                if len <= 0 || len > max_frame then begin
                  t.tx_dropped <- t.tx_dropped + 1;
                  write_status t d status_error
                end
                else begin
                  match t.mem.read_bytes d.data_gpa len with
                  | Some frame ->
                      ignore
                        (Link.send t.link ~from:t.endpoint ~now:t.now
                           ~payload:(Bytes.to_string frame));
                      t.sent <- t.sent + 1
                      (* status stays 0 = ok; completion is the used index *)
                  | None ->
                      t.tx_dropped <- t.tx_dropped + 1;
                      write_status t d status_error
                end)
          slots;
        Virtio_ring.complete ring ~count:(List.length slots);
        t.irq <- true
      end

let kick t =
  t.kick_count <- t.kick_count + 1;
  consume_tx t

(* Deliver backlogged frames into posted rx buffers, in order.  The
   guest reposts buffers with plain stores and tracks delivery by the
   used index + length-carrying status words — the rx path costs zero
   VM exits. *)
let deliver_rx t =
  match rx_ring t with
  | None -> ()
  | Some ring ->
      let completed = ref 0 in
      let rec go slots =
        match slots with
        | [] -> ()
        | (idx, None) :: rest ->
            (* bad buffer descriptor: consume the slot, keep the frame *)
            t.rx_malformed <- t.rx_malformed + 1;
            Virtio_ring.fail_slot ring idx;
            incr completed;
            go rest
        | (_, Some d) :: rest -> (
            match Ring.peek t.backlog with
            | None -> ()
            | Some frame ->
                let len = String.length frame in
                if len > d.Virtio_ring.data_len then begin
                  (* buffer too small: the frame cannot be delivered and
                     the buffer is returned with an error — both counted *)
                  ignore (Ring.pop t.backlog);
                  t.rx_dropped <- t.rx_dropped + 1;
                  write_status t d status_error
                end
                else if t.mem.write_bytes d.data_gpa (Bytes.of_string frame) then begin
                  ignore (Ring.pop t.backlog);
                  t.received <- t.received + 1;
                  write_status t d (Int64.of_int (len lsl 8))
                end
                else begin
                  ignore (Ring.pop t.backlog);
                  t.rx_dropped <- t.rx_dropped + 1;
                  write_status t d status_error
                end;
                incr completed;
                go rest)
      in
      go (Virtio_ring.pending_slots ring);
      if !completed > 0 then begin
        Virtio_ring.complete ring ~count:!completed;
        t.irq <- true
      end

let tick t now =
  if Int64.unsigned_compare now t.now > 0 then t.now <- now;
  List.iter
    (fun frame ->
      if not (Ring.push t.backlog frame) then t.rx_overflow <- t.rx_overflow + 1)
    (Link.poll t.link ~at:t.endpoint ~now:t.now);
  deliver_rx t

let read_reg t off =
  if off = reg_isr then begin
    let v = if t.irq then 1L else 0L in
    t.irq <- false;
    v
  end
  else if off = reg_tx_ring_base then t.tx_base
  else if off = reg_tx_ring_size then t.tx_size
  else if off = reg_rx_ring_base then t.rx_base
  else if off = reg_rx_ring_size then t.rx_size
  else if off = reg_sent then Int64.of_int t.sent
  else if off = reg_received then Int64.of_int t.received
  else if off = reg_tx_dropped then Int64.of_int (t.tx_dropped + t.tx_malformed)
  else if off = reg_rx_dropped then Int64.of_int (t.rx_dropped + t.rx_malformed)
  else if off = reg_rx_overflow then Int64.of_int t.rx_overflow
  else if off = reg_kicks then Int64.of_int t.kick_count
  else 0L

let write_reg t off v =
  if off = reg_tx_kick then kick t
  else if off = reg_tx_ring_base then begin
    t.tx_base <- v;
    t.tx_ring <- None
  end
  else if off = reg_tx_ring_size then begin
    t.tx_size <- v;
    t.tx_ring <- None
  end
  else if off = reg_rx_ring_base then begin
    t.rx_base <- v;
    t.rx_ring <- None
  end
  else if off = reg_rx_ring_size then begin
    t.rx_size <- v;
    t.rx_ring <- None
  end

let device ?(base = mmio_base) t =
  {
    Velum_machine.Bus.name = "virtio-net";
    base;
    size = 0x100;
    read = (fun off _w -> read_reg t off);
    write = (fun off _w v -> write_reg t off v);
    tick = (fun now -> tick t now);
    pending_irq = (fun () -> t.irq || not (Ring.is_empty t.backlog));
  }

(* Host-side programming — a migration destination re-attaches the
   device with the same ring layout without replaying guest MMIO. *)
let configure t ~tx_base ~tx_size ~rx_base ~rx_size =
  t.tx_base <- tx_base;
  t.tx_size <- Int64.of_int tx_size;
  t.rx_base <- rx_base;
  t.rx_size <- Int64.of_int rx_size;
  t.tx_ring <- None;
  t.rx_ring <- None

(* Device-state handoff: drain the source device's undelivered backlog
   so a live migration loses no frames that already left the wire. *)
let drain_backlog t =
  let rec go acc =
    match Ring.pop t.backlog with None -> List.rev acc | Some f -> go (f :: acc)
  in
  go []

let seed_backlog t frames =
  List.iter
    (fun f -> if not (Ring.push t.backlog f) then t.rx_overflow <- t.rx_overflow + 1)
    frames

let frames_sent t = t.sent
let frames_received t = t.received
let tx_dropped t = t.tx_dropped
let tx_malformed t = t.tx_malformed
let rx_dropped t = t.rx_dropped
let rx_malformed t = t.rx_malformed
let rx_overflow t = t.rx_overflow
let kicks t = t.kick_count
let backlog_length t = Ring.length t.backlog
let next_arrival t = Link.next_arrival t.link ~at:t.endpoint
let link t = t.link
