(** A complete bare-metal VR64 machine: one hart, RAM, MMU, and a device
    complement (UART console, emulated block device, paravirtual block
    device, NIC) on the MMIO bus.

    This is the {e native} baseline every virtualization experiment
    compares against — the same guest images boot here and under the
    hypervisor. *)

open Velum_isa
open Velum_machine

type t = {
  mem : Phys_mem.t;
  bus : Bus.t;
  uart : Uart.t;
  blk : Blockdev.t;
  vblk : Virtio_blk.t;
  nic : Nic.t option;
  cpu : Cpu.state;
  tlb : Tlb.t;
  dtlb : Dtlb.t;  (** data micro-TLB backed by [tlb] (see {!Dtlb}) *)
  mmu : Mmu.t;
  cost : Cost_model.t;
  engine : Engine.t;  (** execution engine driving the hart *)
  mutable clock : int64;
  mutable io_hook : (write:bool -> addr:int64 -> now:int64 -> unit) option;
      (** observer for MMIO/port accesses, stamped with the machine
          clock (see {!set_io_hook}) *)
}

val identity_dma : Phys_mem.t -> Blockdev.dma
(** DMA callbacks that treat device addresses as raw physical addresses
    (native: guest-physical = machine-physical). *)

val identity_guest_mem : Phys_mem.t -> Virtio_ring.guest_mem

val create :
  ?frames:int ->
  ?cost:Cost_model.t ->
  ?blk_sectors:int ->
  ?tlb_size:int ->
  ?nic:Link.t * Link.endpoint ->
  ?engine:Engine.kind ->
  unit ->
  t
(** [create ()] builds a machine with 4096 frames (16 MiB) by default.
    Passing [~nic:(link, endpoint)] attaches a NIC bound to that link.
    [engine] picks the execution engine (default interpreter); the block
    engine's cache is kept coherent with RAM via write listeners, so DMA
    and self-modifying code behave identically on both. *)

val load_image : t -> Asm.image -> unit
(** Copy an assembled image into RAM at its origin. *)

val set_io_hook : t -> (write:bool -> addr:int64 -> now:int64 -> unit) -> unit
(** Install an observer called on every device access (MMIO read/write,
    port in/out) with the current cycle clock.  Purely an observation
    point — it must not touch machine state.  The CLI uses it to feed
    the tracing subsystem on native runs without making this library
    depend on the hypervisor. *)

val boot : t -> entry:int64 -> unit
(** Reset the hart: [pc := entry], supervisor mode, registers cleared. *)

type outcome =
  | Halted  (** the guest executed [halt] *)
  | Out_of_budget
  | Deadlock  (** [wfi] with no event that could ever wake the hart *)

val run : ?budget:int64 -> t -> outcome
(** [run ?budget t] executes until halt, budget exhaustion (default 500M
    cycles) or deadlock, advancing the cycle clock and ticking devices.
    [wfi] fast-forwards the clock to the next timer or device event. *)

val console_output : t -> string
val cycles : t -> int64
val instructions_retired : t -> int64
