module Fault = Velum_util.Fault

type endpoint = [ `A | `B ]

let peer = function `A -> `B | `B -> `A

(* Arrival-ordered frame queue: an array-backed binary min-heap keyed by
   (arrival, seq).  The monotonically increasing sequence number breaks
   ties so that frames with equal arrival cycles stay FIFO.  This replaces
   the previous [queue @ [x]] list append, which made a burst of n sends
   cost O(n^2). *)
module Heap = struct
  type entry = { arrival : int64; seq : int; payload : string }

  type t = { mutable a : entry array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let before x y =
    let c = Int64.unsigned_compare x.arrival y.arrival in
    if c <> 0 then c < 0 else x.seq < y.seq

  let push h e =
    if h.len = Array.length h.a then begin
      let cap = max 8 (2 * Array.length h.a) in
      let a' = Array.make cap e in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    (* sift up *)
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.a.(0) <- h.a.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.len && before h.a.(l) h.a.(!s) then s := l;
        if r < h.len && before h.a.(r) h.a.(!s) then s := r;
        if !s <> !i then begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
        else continue := false
      done
    end;
    top
end

type direction = {
  mutable line_free : int64; (* cycle when the sender's line frees up *)
  heap : Heap.t;
  ctl : Heap.t; (* control lane: same wire, own queue *)
}

type t = {
  bpc : float;
  latency : int;
  a_to_b : direction;
  b_to_a : direction;
  mutable total_bytes : int;
  mutable seq : int; (* global tiebreaker: send order across the link *)
  mutable faults : Fault.t;
  (* Data-lane loss accounting.  The sender cannot observe a drop (it
     still pays serialization and gets an arrival estimate), so the link
     itself keeps the books: every frame is either queued, counted in
     [dropped], or produced an extra copy counted in [duplicated].  Frame
     conservation across a NIC pair closes only with these terms. *)
  mutable dropped : int;
  mutable duplicated : int;
}

let create ?(bytes_per_cycle = 1.25) ?(latency_cycles = 2000) () =
  if bytes_per_cycle <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency_cycles < 0 then invalid_arg "Link.create: negative latency";
  {
    bpc = bytes_per_cycle;
    latency = latency_cycles;
    a_to_b = { line_free = 0L; heap = Heap.create (); ctl = Heap.create () };
    b_to_a = { line_free = 0L; heap = Heap.create (); ctl = Heap.create () };
    total_bytes = 0;
    seq = 0;
    faults = Fault.none ();
    dropped = 0;
    duplicated = 0;
  }

let set_faults t f = t.faults <- f
let faults t = t.faults

let bytes_per_cycle t = t.bpc
let latency_cycles t = t.latency

let serialization t bytes = int_of_float (ceil (float_of_int bytes /. t.bpc))

let transfer_cycles t ~bytes = serialization t bytes + t.latency

let dir t from = match from with `A -> t.a_to_b | `B -> t.b_to_a

let enqueue t d ~arrival ~payload =
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push d.heap { Heap.arrival; seq; payload }

let corrupt_payload t payload =
  let b = Bytes.of_string payload in
  if Bytes.length b > 0 then begin
    let rng = Fault.rng t.faults in
    let i = Velum_util.Rng.int rng (Bytes.length b) in
    let bit = Velum_util.Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))
  end;
  Bytes.to_string b

let send t ~from ~now ~payload =
  let d = dir t from in
  let start = if Int64.unsigned_compare now d.line_free > 0 then now else d.line_free in
  let ser = Int64.of_int (serialization t (String.length payload)) in
  d.line_free <- Int64.add start ser;
  let arrival = Int64.add d.line_free (Int64.of_int t.latency) in
  t.total_bytes <- t.total_bytes + String.length payload;
  let f = t.faults in
  (* Fixed decision order keeps the fault schedule deterministic: the
     sender always pays the serialization time (the frame went onto the
     wire) even when the frame is then lost. *)
  if Fault.fire f Fault.Partition ~now || Fault.fire f Fault.Drop ~now then begin
    t.dropped <- t.dropped + 1;
    arrival
  end
  else begin
    let payload =
      if Fault.fire f Fault.Corrupt ~now then corrupt_payload t payload
      else payload
    in
    let arrival =
      if Fault.fire f Fault.Delay ~now then
        let extra =
          1 + Velum_util.Rng.int (Fault.rng f) (max 1 (2 * t.latency))
        in
        Int64.add arrival (Int64.of_int extra)
      else arrival
    in
    enqueue t d ~arrival ~payload;
    if Fault.fire f Fault.Duplicate ~now then begin
      t.duplicated <- t.duplicated + 1;
      enqueue t d ~arrival:(Int64.add arrival 1L) ~payload
    end;
    arrival
  end

(* Control-plane frame: same wire (so the same partition/loss/delay
   exposure), but its own lane — a few dozen bytes never contend with,
   nor get drained by, a megabyte checkpoint stream's receiver. *)
let send_control t ~from ~now ~payload =
  let d = dir t from in
  let arrival = Int64.add now (Int64.of_int t.latency) in
  t.total_bytes <- t.total_bytes + String.length payload;
  let f = t.faults in
  if Fault.fire f Fault.Partition ~now || Fault.fire f Fault.Drop ~now then
    arrival
  else begin
    let payload =
      if Fault.fire f Fault.Corrupt ~now then corrupt_payload t payload
      else payload
    in
    let arrival =
      if Fault.fire f Fault.Delay ~now then
        let extra =
          1 + Velum_util.Rng.int (Fault.rng f) (max 1 (2 * t.latency))
        in
        Int64.add arrival (Int64.of_int extra)
      else arrival
    in
    let seq = t.seq in
    t.seq <- seq + 1;
    Heap.push d.ctl { Heap.arrival; seq; payload };
    arrival
  end

let drain heap ~now =
  let rec go acc =
    match Heap.min heap with
    | Some e when Int64.unsigned_compare e.Heap.arrival now <= 0 ->
        let e = Heap.pop heap in
        go (e.Heap.payload :: acc)
    | _ -> List.rev acc
  in
  go []

let poll_control t ~at ~now = drain (dir t (peer at)).ctl ~now

let poll t ~at ~now = drain (dir t (peer at)).heap ~now

let next_arrival t ~at =
  match Heap.min (dir t (peer at)).heap with
  | None -> None
  | Some e -> Some e.Heap.arrival

let in_flight t =
  t.a_to_b.heap.Heap.len + t.b_to_a.heap.Heap.len + t.a_to_b.ctl.Heap.len
  + t.b_to_a.ctl.Heap.len

let queued t ~at = (dir t (peer at)).heap.Heap.len
let wire_dropped t = t.dropped
let wire_duplicated t = t.duplicated
let bytes_sent t = t.total_bytes
