open Velum_isa
open Velum_machine

type t = {
  mem : Phys_mem.t;
  bus : Bus.t;
  uart : Uart.t;
  blk : Blockdev.t;
  vblk : Virtio_blk.t;
  nic : Nic.t option;
  cpu : Cpu.state;
  tlb : Tlb.t;
  dtlb : Dtlb.t;
  mmu : Mmu.t;
  cost : Cost_model.t;
  engine : Engine.t;
  mutable clock : int64;
  mutable io_hook : (write:bool -> addr:int64 -> now:int64 -> unit) option;
}

let identity_dma mem =
  {
    Blockdev.dma_read =
      (fun pa len ->
        if Phys_mem.in_range mem ~pa ~bytes:len then begin
          let b = Bytes.create len in
          for i = 0 to len - 1 do
            Bytes.set b i
              (Char.chr
                 (Int64.to_int
                    (Phys_mem.read mem (Int64.add pa (Int64.of_int i)) Instr.W8)))
          done;
          Some b
        end
        else None);
    dma_write =
      (fun pa b ->
        if Phys_mem.in_range mem ~pa ~bytes:(Bytes.length b) then begin
          for i = 0 to Bytes.length b - 1 do
            Phys_mem.write mem
              (Int64.add pa (Int64.of_int i))
              Instr.W8
              (Int64.of_int (Char.code (Bytes.get b i)))
          done;
          true
        end
        else false);
  }

let identity_guest_mem mem =
  let dma = identity_dma mem in
  {
    Virtio_ring.read_u64 =
      (fun pa ->
        if Phys_mem.in_range mem ~pa ~bytes:8 then Some (Phys_mem.read mem pa Instr.W64)
        else None);
    write_u64 =
      (fun pa v ->
        if Phys_mem.in_range mem ~pa ~bytes:8 then begin
          Phys_mem.write mem pa Instr.W64 v;
          true
        end
        else false);
    read_bytes = dma.Blockdev.dma_read;
    write_bytes = dma.Blockdev.dma_write;
  }

let create ?(frames = 4096) ?(cost = Cost_model.default) ?(blk_sectors = 8192)
    ?(tlb_size = 64) ?nic ?(engine = Engine.Interp) () =
  let mem = Phys_mem.create ~frames in
  let bus = Bus.create () in
  let uart = Uart.create () in
  let blk = Blockdev.create ~sectors:blk_sectors (identity_dma mem) in
  let vblk = Virtio_blk.create ~sectors:blk_sectors (identity_guest_mem mem) in
  Bus.attach bus (Uart.device uart);
  Bus.attach bus (Blockdev.device blk);
  Bus.attach bus (Virtio_blk.device vblk);
  let nic =
    Option.map
      (fun (link, endpoint) ->
        let n = Nic.create ~link ~endpoint ~dma:(identity_dma mem) () in
        Bus.attach bus (Nic.device n);
        n)
      nic
  in
  let cpu = Cpu.create_state () in
  let tlb = Tlb.create ~size:tlb_size in
  let dtlb = Dtlb.create ~tlb in
  let mmu = Mmu.create ~mem ~tlb ~cost ~get_satp:(fun () -> Cpu.get_csr cpu Arch.Satp) in
  let engine = Engine.of_kind engine in
  (* Bare metal has no frame revocation, so the write listener is the
     only coherence hook a block engine needs here (covers stores, DMA
     and load_image alike). *)
  Option.iter
    (fun cache ->
      ignore
        (Phys_mem.add_write_listener mem (fun ~ppn ~lo ~hi ->
             Trans_cache.invalidate_range cache ~ppn ~lo ~hi)))
    engine.Engine.cache;
  {
    mem;
    bus;
    uart;
    blk;
    vblk;
    nic;
    cpu;
    tlb;
    dtlb;
    mmu;
    cost;
    engine;
    clock = 0L;
    io_hook = None;
  }

let set_io_hook t f = t.io_hook <- Some f

let notify_io t ~write ~addr =
  match t.io_hook with
  | Some f -> f ~write ~addr ~now:t.clock
  | None -> ()

let load_image t (img : Asm.image) = Phys_mem.load_bytes t.mem ~pa:img.origin img.code

let boot t ~entry =
  Array.fill t.cpu.Cpu.regs 0 Arch.num_regs 0L;
  Array.fill t.cpu.Cpu.csrs 0 (Array.length t.cpu.Cpu.csrs) 0L;
  t.cpu.Cpu.pc <- entry;
  t.cpu.Cpu.mode <- Arch.Supervisor;
  t.cpu.Cpu.halted <- false;
  t.cpu.Cpu.waiting <- false

type outcome = Halted | Out_of_budget | Deadlock

let make_ctx t =
  {
    Cpu.translate = (fun ~access ~user va -> Mmu.translate t.mmu ~access ~user va);
    read_ram = (fun pa w -> Phys_mem.read t.mem pa w);
    write_ram = (fun pa w v -> Phys_mem.write t.mem pa w v);
    flush_tlb =
      (fun () ->
        Mmu.flush t.mmu;
        match t.engine.Engine.cache with
        | Some c -> Trans_cache.note_flush c
        | None -> ());
    now = (fun () -> t.clock);
    ext_irq = (fun () -> Bus.pending_irq t.bus);
    cost = t.cost;
    dtlb = Some t.dtlb;
    env =
      Cpu.Native
        {
          mmio_read =
            (fun pa w ->
              notify_io t ~write:false ~addr:pa;
              Bus.read t.bus pa w);
          mmio_write =
            (fun pa w v ->
              notify_io t ~write:true ~addr:pa;
              Bus.write t.bus pa w v);
          port_in =
            (fun port ->
              notify_io t ~write:false ~addr:(Int64.of_int port);
              if port = Uart.data_port then Some (Uart.read_reg t.uart Uart.reg_data)
              else if port = Uart.status_port then
                Some (Uart.read_reg t.uart Uart.reg_status)
              else None);
          port_out =
            (fun port v ->
              notify_io t ~write:true ~addr:(Int64.of_int port);
              if port = Uart.data_port then begin
                Uart.write_reg t.uart Uart.reg_data v;
                true
              end
              else false);
        };
  }

(* The earliest future event that could wake a waiting hart. *)
let next_event t =
  let candidates =
    List.filter_map Fun.id
      [
        (let cmp = Cpu.get_csr t.cpu Arch.Stimecmp in
         if cmp <> 0L && Int64.unsigned_compare cmp t.clock > 0 then Some cmp else None);
        Blockdev.next_completion t.blk;
        Virtio_blk.next_completion t.vblk;
        Option.bind t.nic Nic.next_arrival;
      ]
  in
  match candidates with
  | [] -> None
  | first :: rest -> Some (List.fold_left min first rest)

let chunk = 1000

let run ?(budget = 500_000_000L) t =
  let ctx = make_ctx t in
  let deadline = Int64.add t.clock budget in
  let rec loop () =
    if Int64.unsigned_compare t.clock deadline >= 0 then Out_of_budget
    else begin
      let consumed, stop = t.engine.Engine.step_n t.cpu ctx ~fuel:chunk in
      t.clock <- Int64.add t.clock (Int64.of_int consumed);
      Bus.tick t.bus t.clock;
      match stop with
      | Cpu.Halted -> Halted
      | Cpu.Budget -> loop ()
      | Cpu.Waiting -> (
          match next_event t with
          | Some when_ when Int64.unsigned_compare when_ t.clock > 0 ->
              t.clock <- when_;
              Bus.tick t.bus t.clock;
              loop ()
          | Some _ ->
              (* Event already due: let the hart re-check interrupts. *)
              Bus.tick t.bus t.clock;
              if
                Cpu.interrupt_pending t.cpu ~now:t.clock
                  ~ext_irq:(Bus.pending_irq t.bus)
                  <> None
              then loop ()
              else Deadlock
          | None -> Deadlock)
      | Cpu.Exit _ -> assert false
    end
  in
  loop ()

let console_output t = Uart.output t.uart
let cycles t = t.clock
let instructions_retired t = t.cpu.Cpu.instret
