(** Shared-memory descriptor ring (virtio-style paravirtual transport).

    The ring lives in guest memory.  The guest publishes request
    descriptors, bumps the available index, and {e kicks} the device once
    per batch with a single doorbell write — one VM exit amortized over
    the whole batch, versus one exit per register write on the emulated
    path.  The device consumes descriptors up to the available index and
    bumps the used index as it completes them.

    Memory layout at the ring base (all fields 64-bit little-endian):
    {v
      0x00  avail_idx   free-running, written by the guest
      0x08  used_idx    free-running, written by the device
      0x10  desc[size]  40-byte descriptors:
              +0   data buffer guest-physical address
              +8   data length in bytes
              +16  request kind (device-specific)
              +24  argument (device-specific, e.g. sector)
              +32  status byte guest-physical address
    v} *)

type guest_mem = {
  read_u64 : int64 -> int64 option;
  write_u64 : int64 -> int64 -> bool;
  read_bytes : int64 -> int -> Bytes.t option;
  write_bytes : int64 -> Bytes.t -> bool;
}
(** Guest-physical memory accessors ([None]/[false] = bad address). *)

type desc = {
  data_gpa : int64;
  data_len : int;
  kind : int64;
  arg : int64;
  status_gpa : int64;
}

val desc_stride : int
val header_bytes : int

val ring_bytes : size:int -> int
(** Total guest memory the ring occupies. *)

type t

val create : mem:guest_mem -> base:int64 -> size:int -> t
(** [create ~mem ~base ~size] — [size] descriptors; the guest must have
    zeroed the header.

    @raise Invalid_argument if [size] is not a positive power of two. *)

val size : t -> int
val base : t -> int64

val avail_idx : t -> int64
(** Current available index as published by the guest ([0] on a DMA
    error). *)

val used_idx : t -> int64

val pending_slots : t -> (int64 * desc option) list
(** [pending_slots t] covers {e every} slot in [used_idx, avail_idx), in
    order, pairing each free-running index with its descriptor — [None]
    when the slot is malformed (a descriptor-word read failed).  Devices
    must consume this, not {!pending}: the used index is in-order, so a
    skipped slot must still be completed (see {!fail_slot}) or the ring
    desynchronizes forever. *)

val pending : t -> desc list
(** [pending t] is [pending_slots t] with malformed slots dropped —
    convenient for tests and read-only inspection.  Devices that
    [complete ~count] with this list's length will desynchronize
    [used_idx] from [avail_idx] whenever a slot was malformed; drive
    completion from {!pending_slots} instead. *)

val complete : t -> count:int -> unit
(** [complete t ~count] advances the used index by [count].  [count]
    must cover malformed slots too — it is a slot count, not a
    success count. *)

val fail_slot : t -> int64 -> unit
(** [fail_slot t idx] writes the error status byte ([0x01]) for the
    (possibly malformed) slot at free-running index [idx], best-effort:
    if even the status pointer word is unreadable there is nowhere to
    write, and the slot is advanced past silently by the caller's
    [complete]. *)

val error_status : char
(** The status byte {!fail_slot} writes. *)

(** {1 Guest-side helpers}

    These run with host visibility (no simulated cycles) and exist for
    the host-side of tests and for building guest images; guest code
    performs the same writes with ordinary stores. *)

val guest_push : t -> desc -> bool
(** [guest_push t d] writes the next descriptor slot and bumps
    [avail_idx]; [false] when the ring is full. *)

val slot_addr : t -> int64 -> int64
(** [slot_addr t idx] is the guest-physical address of the descriptor
    slot for (free-running) index [idx]. *)
