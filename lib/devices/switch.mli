(** Software L2 switch connecting many VMs over per-port {!Link}s.

    Port [i] is the [`B] end of [ports.(i)]; the VM's NIC sits at [`A].
    Frames start with two little-endian u64 fields — destination MAC
    then source MAC (anything shorter is a runt).  The switch learns
    source MACs per port, forwards known unicast, floods broadcast
    ([0xffff_ffff_ffff_ffff]) to every other port, and drops — with a
    named counter, never silently — unknown unicast ([drop_unknown]),
    frames whose destination is their ingress port ([drop_reflect]),
    runts ([drop_runt]) and frames arriving at a full egress queue
    ([drop_queue_full]; bounded per-port queues measured as in-flight
    frames on the egress link).

    Conservation: [in_frames + flood_extra = out_frames + drops] always
    holds ({!conserved}); downstream losses are the port links' to count
    ({!Link.wire_dropped}). *)

val broadcast_mac : int64
val header_bytes : int

val mac_dst : string -> int64
val mac_src : string -> int64

type t

val create : ?queue_cap:int -> Link.t array -> t
(** [queue_cap] (default 64) bounds each port's egress queue.

    @raise Invalid_argument on zero ports or a non-positive cap. *)

val port_count : t -> int
val port : t -> int -> Link.t

val learn : t -> mac:int64 -> port:int -> unit
(** Preload a static MAC-table entry (also learned dynamically from
    source addresses). *)

val lookup : t -> int64 -> int option

val set_snoop : t -> (int -> int64 -> string -> unit) option -> unit
(** [set_snoop t (Some f)] calls [f egress_port now frame] for every
    forwarded frame — benches use it to timestamp request/reply pairs
    into latency histograms without perturbing the data path. *)

val tick : t -> int64 -> unit
(** Drain every port's arrivals (in port order) and forward them.  Time
    only moves forward, so two hypervisors may tick one switch during a
    live migration. *)

val next_event : t -> int64 option
(** Earliest pending arrival on any port — lets an idle hypervisor
    sleep until the switch has work. *)

val in_frames : t -> int
val out_frames : t -> int
val flood_extra : t -> int
val drop_unknown : t -> int
val drop_reflect : t -> int
val drop_runt : t -> int
val drop_queue_full : t -> int
val drops : t -> int
val conserved : t -> bool
val pp : Format.formatter -> t -> unit
