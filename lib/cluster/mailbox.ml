type frame = { src : int; dst : int; sent_at : int64; payload : string }

type t = { m : Mutex.t; mutable rev_frames : frame list (* newest first *) }

let create () = { m = Mutex.create (); rev_frames = [] }

let post t f =
  Mutex.lock t.m;
  t.rev_frames <- f :: t.rev_frames;
  Mutex.unlock t.m

let drain t =
  Mutex.lock t.m;
  let fs = List.rev t.rev_frames in
  t.rev_frames <- [];
  Mutex.unlock t.m;
  fs

let length t =
  Mutex.lock t.m;
  let n = List.length t.rev_frames in
  Mutex.unlock t.m;
  n
