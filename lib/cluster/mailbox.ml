type frame = { src : int; dst : int; sent_at : int64; payload : string }

type t = {
  m : Mutex.t;
  capacity : int option;
  mutable len : int;
  mutable rev_frames : frame list; (* newest first *)
  mutable dropped : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Mailbox.create: capacity must be >= 1"
  | _ -> ());
  { m = Mutex.create (); capacity; len = 0; rev_frames = []; dropped = 0 }

let post t f =
  Mutex.lock t.m;
  let accepted =
    match t.capacity with
    | Some c when t.len >= c ->
        t.dropped <- t.dropped + 1;
        false
    | _ ->
        t.rev_frames <- f :: t.rev_frames;
        t.len <- t.len + 1;
        true
  in
  Mutex.unlock t.m;
  accepted

let drain t =
  Mutex.lock t.m;
  let fs = List.rev t.rev_frames in
  t.rev_frames <- [];
  t.len <- 0;
  Mutex.unlock t.m;
  fs

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

let dropped t =
  Mutex.lock t.m;
  let n = t.dropped in
  Mutex.unlock t.m;
  n
