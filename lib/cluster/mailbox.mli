(** Domain-safe FIFO mailbox for cross-host frames.

    The only mutable structure both sides of a domain boundary touch in
    the parallel cluster runner: a node's worker drains its inbox and
    fills its outbox during a round; the coordinator routes outbox
    frames through {!Velum_devices.Link}s into inboxes at the barrier.
    The runner's round protocol guarantees the two sides never overlap
    in time, but the mutex keeps the structure safe even under
    programming errors and makes the hand-off a proper happens-before
    edge on its own. *)

type frame = {
  src : int;  (** sending host id *)
  dst : int;  (** destination host id *)
  sent_at : int64;  (** simulated cycle the frame left the host *)
  payload : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty mailbox.  Without [capacity] the
    queue is unbounded (the historical behaviour).  With [capacity] the
    mailbox holds at most that many undrained frames: further posts are
    dropped, counted, and reported to the sender — coordinator overload
    becomes observable backpressure instead of unbounded queue growth.
    Raises [Invalid_argument] if [capacity < 1]. *)

val post : t -> frame -> bool
(** [post t f] enqueues [f] and returns [true], or — when a bounded
    mailbox is full — drops it, bumps {!dropped}, and returns [false] so
    the sender sees the backpressure. *)

val drain : t -> frame list
(** All pending frames in posting order; the mailbox is left empty. *)

val length : t -> int

val dropped : t -> int
(** Frames refused because the mailbox was at capacity. *)
