(** Share-nothing fleet execution on OCaml 5 domains under a
    deterministic round barrier.

    A fleet is N simulated hosts, each a full {!Velum_vmm.Hypervisor}
    built around its own {!Velum_vmm.Host_ctx} — so no host shares any
    mutable state with another except {!Velum_devices.Link} endpoints,
    and those are only touched by the coordinator while every worker is
    parked at a barrier.

    Execution alternates two phases per round:

    - {b worker phase}: every live host runs independently up to the
      absolute cycle boundary [(round+1) * quantum] and posts outbound
      frames (ring heartbeats) to its outbox.  With [domains > 1] the
      hosts are statically partitioned over domains; with [domains = 1]
      they run in host order on the calling thread.
    - {b barrier phase}: the coordinator alone drains all outboxes in
      host order, pushes the frames through the ring links (faults,
      latency and serialization apply as usual), delivers arrivals into
      inboxes, and performs scheduled migrations and host-failure
      injections.

    Because a host's quantum is a pure function of its own state plus
    its inbox, and the barrier phase is sequential in a fixed order, the
    simulated outcome — cycles, exits, monitor counters, trace exports,
    fault draws — is byte-identical for every domain count.  {!report}
    is the canonical artifact the determinism gates diff literally; it
    deliberately contains nothing about how the run was executed (no
    domain count, no wall-clock). *)

type vm_spec = {
  vname : string;
  setup : Velum_guests.Images.setup;
  paging : Velum_vmm.Vm.paging_mode;
  pv : bool;
  engine : Velum_machine.Engine.kind;
}

val spec :
  ?paging:Velum_vmm.Vm.paging_mode ->
  ?pv:bool ->
  ?engine:Velum_machine.Engine.kind ->
  name:string ->
  Velum_guests.Images.setup ->
  vm_spec
(** Defaults: nested paging, no PV, interpreter engine. *)

type config = private {
  hosts : int;
  quantum : int64;  (** cycles per round *)
  rounds : int;  (** maximum rounds (stops early when all hosts finish) *)
  mk_vms : int -> vm_spec list;  (** host id -> its VMs *)
  seed : int64;  (** fleet seed; per-host/per-link streams derive from it *)
  faults : Velum_util.Fault.t option;
      (** base plan; every host and link gets a {!Velum_util.Fault.derive}d
          copy with its own stream *)
  hb_miss_limit : int;
      (** consecutive heartbeat-less rounds before a host declares its
          ring predecessor dead *)
  hb_timeout : int64;
      (** additional heartbeat-less cycles (converted to rounds via the
          quantum) required before the declaration; 0 = the miss count
          alone decides.  Mirrors {!Velum_vmm.Ha.Failover.hb_knobs}. *)
  migrate_every : int;  (** every k rounds move one VM along the ring; 0 = off *)
  fail_host : (int * int) option;  (** [(round, host)]: kill host at that round *)
  trace : bool;  (** attach a trace sink to every host *)
  host_frames : int option;
      (** fixed per-host frame pool; default sizes each host to its own
          VMs' needs + 1024.  The cluster control plane sets this so
          every host can absorb evacuated/migrated VMs. *)
  mailbox_capacity : int option;
      (** bound every inbox/outbox (see {!Mailbox.create}); [None] =
          unbounded *)
  wire : (int -> Velum_vmm.Hypervisor.t -> unit) option;
      (** per-host fabric builder, called once per host at {!init} after
          its VMs are created and loaded.  Use it to build an intra-host
          network ({!Velum_devices.Switch} + {!Velum_vmm.Vm.attach_vnet})
          and register its tickers.  Everything it wires lives inside
          one host, so worker-phase parallelism never touches shared
          state and byte-determinism is preserved. *)
}

val config :
  ?quantum:int64 ->
  ?rounds:int ->
  ?seed:int64 ->
  ?faults:Velum_util.Fault.t ->
  ?hb_miss_limit:int ->
  ?hb_timeout:int64 ->
  ?migrate_every:int ->
  ?fail_host:int * int ->
  ?trace:bool ->
  ?host_frames:int ->
  ?mailbox_capacity:int ->
  ?wire:(int -> Velum_vmm.Hypervisor.t -> unit) ->
  hosts:int ->
  mk_vms:(int -> vm_spec list) ->
  unit ->
  config
(** Defaults: quantum 200k cycles, 8 rounds, seed 0, no faults, heartbeat
    miss limit 3, no migrations, no failure, no tracing, per-host frame
    pools sized to demand, unbounded mailboxes.

    @raise Invalid_argument on a non-positive host count, quantum,
    round count or [host_frames]. *)

type node = private {
  id : int;
  hyp : Velum_vmm.Hypervisor.t;
  inbox : Mailbox.t;
  outbox : Mailbox.t;
  mutable alive : bool;
  mutable halted : bool;
  mutable hb_sent : int;
  mutable hb_recv : int;
  mutable hb_miss_streak : int;
  mutable last_hb_round : int;
  mutable pred_dead_at : int option;
  mutable junk_frames : int;
  mutable error : exn option;
}

type fleet = private {
  cfg : config;
  nodes : node array;
  ring : Velum_devices.Link.t array;
  mig_link : Velum_devices.Link.t;
  mutable migrations : int;
  mutable mig_aborts : int;
  mutable mig_pages : int;
}

type result = { fleet : fleet; report : string }

val init : config -> fleet
(** Build the fleet (hosts, VMs, links) without running it.  A control
    plane uses this to admit and place VMs before the first round. *)

val run_fleet :
  ?domains:int -> ?on_round:(fleet -> round:int -> unit) -> fleet -> unit
(** Execute an already-initialised fleet.  [on_round] is invoked by the
    coordinator — strictly sequentially, with every worker parked —
    after the barrier exchange of each round; it may mutate fleet state
    through the mutators below and the hypervisors directly.  Because it
    runs only in the coordinator phase, anything it does is
    byte-deterministic whatever [domains] is.

    @raise Invalid_argument if [domains <= 0]. *)

val run :
  ?domains:int -> ?on_round:(fleet -> round:int -> unit) -> config -> result
(** [run ~domains cfg] = {!init} + {!run_fleet} + {!report}.
    [domains = 1] (default) is the sequential reference; any larger
    value spawns [min domains hosts] worker domains.  The report is
    byte-identical across domain counts.

    A worker exception is captured, the fleet is shut down cleanly
    (domains joined), and the exception re-raised on the caller.

    @raise Invalid_argument if [domains <= 0]. *)

val set_alive : node -> bool -> unit
(** Coordinator-phase mutator: kill (cordon/reboot) or revive a host.
    The control plane's drain engine flips this; the records above are
    [private] so plain assignment is unavailable outside this module. *)

val clear_halted : node -> unit
(** Coordinator-phase mutator: clear the all-VMs-halted latch after
    placing fresh VMs on a host so the run loop keeps stepping it. *)

val report : fleet -> string
(** Recompute the canonical report (it is cheap and side-effect-free
    apart from {!Velum_vmm.Vm.publish_stats} gauge snapshots). *)

val traces : fleet -> (int * string) list
(** Per-host deterministic JSONL trace exports (empty unless the config
    asked for tracing). *)
