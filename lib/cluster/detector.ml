open Velum_devices
open Velum_vmm
module Fault = Velum_util.Fault

type host_health = Up | Suspect | Dead | Disarmed

type host_lane = {
  spoke : Link.t;
  faults : Fault.t; (* this host's pre-wire Cluster_hb plan *)
  mutable health : host_health;
  mutable misses : int;
  mutable last_seen : int; (* round a heartbeat/ack last arrived *)
  mutable declared_at : int option;
  mutable next_probe : int;
  mutable probes_unanswered : int;
}

type t = {
  quantum : int64;
  knobs : Ha.Failover.hb_knobs;
  timeout_rounds : int;
  backoff_rounds : int;
  lanes : host_lane array;
  mutable hb_sent : int;
  mutable hb_lost : int;
  mutable probes_sent : int;
  mutable acks_seen : int;
  mutable deaths : int;
}

(* Same golden-ratio stream mixing as the fleet runner: the detector's
   per-host plans must be independent of the node/ring/migration streams
   (streams 0-3), so its stream ids start at 4. *)
let mix_seed base ~stream ~i =
  let gold = 0x9E3779B97F4A7C15L in
  Int64.add base
    (Int64.mul gold (Int64.of_int (((stream + 1) * 8191) + i + 1)))

let spoke_stream = 4
let prewire_stream = 5

let rounds_of_cycles ~quantum c =
  if Int64.compare c 0L <= 0 then 0
  else
    Int64.to_int (Int64.div (Int64.add c (Int64.sub quantum 1L)) quantum)

let create ?(knobs = Ha.Failover.default_hb_knobs) ?faults ~hosts ~quantum
    ~seed () =
  if hosts <= 0 then invalid_arg "Detector.create: hosts must be positive";
  if Int64.compare quantum 0L <= 0 then
    invalid_arg "Detector.create: quantum must be positive";
  if knobs.Ha.Failover.miss_limit <= 0 then
    invalid_arg "Detector.create: miss_limit must be positive";
  let derive ~stream ~i =
    match faults with
    | Some f -> Fault.derive f ~seed:(mix_seed seed ~stream ~i)
    | None -> Fault.none ()
  in
  let lanes =
    Array.init hosts (fun i ->
        let spoke = Link.create () in
        Link.set_faults spoke (derive ~stream:spoke_stream ~i);
        {
          spoke;
          faults = derive ~stream:prewire_stream ~i;
          health = Up;
          misses = 0;
          last_seen = -1;
          declared_at = None;
          next_probe = 0;
          probes_unanswered = 0;
        })
  in
  {
    quantum;
    knobs;
    timeout_rounds = rounds_of_cycles ~quantum knobs.Ha.Failover.timeout;
    backoff_rounds =
      rounds_of_cycles ~quantum knobs.Ha.Failover.takeover_backoff;
    lanes;
    hb_sent = 0;
    hb_lost = 0;
    probes_sent = 0;
    acks_seen = 0;
    deaths = 0;
  }

let health t i = t.lanes.(i).health
let declared_at t i = t.lanes.(i).declared_at
let faults t i = t.lanes.(i).faults
let spoke_bytes t = Array.fold_left (fun a l -> a + Link.bytes_sent l.spoke) 0 t.lanes

let disarm t i =
  let l = t.lanes.(i) in
  l.health <- Disarmed

let rearm t i ~round =
  let l = t.lanes.(i) in
  l.health <- Up;
  l.misses <- 0;
  l.last_seen <- round;
  l.declared_at <- None;
  l.next_probe <- round + 1;
  l.probes_unanswered <- 0

let is_hb p = String.length p >= 2 && String.sub p 0 2 = "HB"
let is_ack p = String.length p >= 3 && String.sub p 0 3 = "ACK"
let is_probe p = String.length p >= 5 && String.sub p 0 5 = "PROBE"

let observe_round t ~alive ~round =
  let target = Int64.mul t.quantum (Int64.of_int (round + 1)) in
  let horizon = Int64.add target t.quantum in
  let newly_dead = ref [] in
  Array.iteri
    (fun i l ->
      if l.health <> Disarmed then begin
        let host_up = alive i in
        (* -- host side (simulated here so the whole protocol runs in
              the coordinator phase): answer probes, emit heartbeat -- *)
        let inbound = Link.poll_control l.spoke ~at:`A ~now:target in
        if host_up then begin
          List.iter
            (fun p ->
              if is_probe p then
                if Fault.fire l.faults Fault.Cluster_hb ~now:target then begin
                  t.hb_lost <- t.hb_lost + 1;
                  Fault.observe l.faults Fault.Cluster_hb
                end
                else
                  ignore
                    (Link.send_control l.spoke ~from:`A ~now:target
                       ~payload:(Printf.sprintf "ACK %d %d" i round)))
            inbound;
          if Fault.fire l.faults Fault.Cluster_hb ~now:target then begin
            t.hb_lost <- t.hb_lost + 1;
            Fault.observe l.faults Fault.Cluster_hb
          end
          else begin
            t.hb_sent <- t.hb_sent + 1;
            ignore
              (Link.send_control l.spoke ~from:`A ~now:target
                 ~payload:(Printf.sprintf "HB %d %d" i round))
          end
        end;
        (* -- hub side: poll this round's arrivals, update suspicion -- *)
        let arrived = Link.poll_control l.spoke ~at:`B ~now:horizon in
        let saw = ref false in
        List.iter
          (fun p ->
            if is_hb p then saw := true
            else if is_ack p then begin
              saw := true;
              t.acks_seen <- t.acks_seen + 1
            end)
          arrived;
        if l.health <> Dead then
          if !saw then begin
            l.misses <- 0;
            l.last_seen <- round;
            l.health <- Up;
            l.probes_unanswered <- 0
          end
          else begin
            l.misses <- l.misses + 1;
            if
              l.misses >= t.knobs.Ha.Failover.miss_limit
              && round - l.last_seen >= t.timeout_rounds
            then begin
              l.health <- Dead;
              l.declared_at <- Some round;
              t.deaths <- t.deaths + 1;
              newly_dead := i :: !newly_dead
            end
            else begin
              (* still suspect: probe with exponential backoff so a
                 flaky-but-alive host is re-checked without flooding
                 the control lane *)
              if l.health = Up then begin
                l.health <- Suspect;
                l.next_probe <- round
              end;
              if round >= l.next_probe then begin
                t.probes_sent <- t.probes_sent + 1;
                ignore
                  (Link.send_control l.spoke ~from:`B ~now:horizon
                     ~payload:(Printf.sprintf "PROBE %d %d" i round));
                l.probes_unanswered <- l.probes_unanswered + 1;
                let step =
                  max 1 t.backoff_rounds
                  * (1 lsl min 8 (l.probes_unanswered - 1))
                in
                l.next_probe <- round + step
              end
            end
          end
      end)
    t.lanes;
  List.rev !newly_dead

type stats = {
  hb_sent : int;
  hb_lost : int;
  probes_sent : int;
  acks_seen : int;
  deaths : int;
}

let stats (t : t) =
  {
    hb_sent = t.hb_sent;
    hb_lost = t.hb_lost;
    probes_sent = t.probes_sent;
    acks_seen = t.acks_seen;
    deaths = t.deaths;
  }
