type t = {
  m : Mutex.t;
  cv : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable phase : int;
}

let create ~parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { m = Mutex.create (); cv = Condition.create (); parties; arrived = 0; phase = 0 }

let await t =
  Mutex.lock t.m;
  let ph = t.phase in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.arrived <- 0;
    t.phase <- ph + 1;
    Condition.broadcast t.cv
  end
  else
    (* The phase stamp guards against spurious wakeups and lets the
       barrier be reused round after round without draining. *)
    while t.phase = ph do
      Condition.wait t.cv t.m
    done;
  Mutex.unlock t.m
