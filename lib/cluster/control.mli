(** Self-healing cluster control plane.

    Runs {e on top of} {!Parallel}'s coordinator phase (the [on_round]
    hook): every decision — admission, failure detection, evacuation,
    maintenance, overload shedding — executes strictly sequentially
    while the worker domains are parked, so the whole control plane is
    byte-deterministic at any domain count.  Responsibilities:

    - {b Admission control}: first-fit-decreasing placement over a
      {!Velum_vmm.Placement.Pool} with anti-affinity groups and
      per-host headroom reservations, highest priority class first.
    - {b Failure detection}: the {!Detector} hub-and-spoke heartbeat
      protocol ({!Velum_vmm.Ha.Failover.hb_knobs}-tuned, fault-
      injectable via [cluster.hb] and spoke link sites).
    - {b Evacuation}: a declared-dead host is fenced {e first} (so a
      false positive becomes a true positive and split-brain is
      structurally impossible), then its VMs are restored from their
      last durable checkpoint (one shared content-addressed
      {!Velum_vmm.Store} holding a named stream per VM, so sibling VMs
      dedup into the same chunks)
      onto survivors — restart storms rate-limited to [evac_per_round],
      repeatedly-failing VMs degraded to halted once the crash-loop
      budget is spent ([E_cluster_degraded]).
    - {b Rolling maintenance}: {!Drain} per host — cordon → bounded
      concurrent live migration ({!Velum_vmm.Migrate}, retries
      accounted, checkpoint cold-move once retries exhaust) → reboot
      outage (detector disarmed) → refill.
    - {b Graceful overload degradation}: under admission pressure the
      lowest class is rejected ([E_cluster_shed]), the middle classes
      balloon lower-priority residents down via
      {!Velum_vmm.Mem_mgr.evict} (never above half a victim's
      reservation, [E_cluster_degraded] per squeeze), and the highest
      class is never evicted — it waits.

    {!report} is the determinism artifact: control-plane state plus the
    fleet runner's canonical report, byte-identical across domain
    counts. *)

type priority = Low | Normal | High

type vm_desc = private {
  name : string;  (** unique across the workload *)
  setup : Velum_guests.Images.setup;
  prio : priority;
  group : int option;  (** anti-affinity group *)
  arrives : int;  (** admission round; [<= 0] = placed before cycle 0 *)
}

val desc :
  ?prio:priority ->
  ?group:int ->
  ?arrives:int ->
  name:string ->
  Velum_guests.Images.setup ->
  vm_desc
(** Defaults: [Normal] priority, no group, arrives at round 0. *)

type config = private {
  hosts : int;
  quantum : int64;
  rounds : int;
  seed : int64;
  faults : Velum_util.Fault.t option;
  knobs : Velum_vmm.Ha.Failover.hb_knobs;
  cap_units : int;  (** placement capacity per host, in guest frames *)
  headroom : int;  (** frames reserved per host for evacuations *)
  checkpoint_every : int;  (** rounds between durable checkpoints *)
  evac_per_round : int;  (** restart-storm rate limit *)
  crash_loop_budget : int;
      (** failed evacuation attempts per VM before degrade-to-halted *)
  drain_concurrent : int;  (** max live migrations per drain round *)
  reboot_rounds : int;  (** maintenance outage length *)
  drains : (int * int) list;  (** [(round, host)] maintenance schedule *)
  kills : (int * int) list;  (** [(round, host)] chaos host kills *)
  workload : vm_desc list;
  mailbox_capacity : int option;
  trace : bool;
}

val config :
  ?quantum:int64 ->
  ?rounds:int ->
  ?seed:int64 ->
  ?faults:Velum_util.Fault.t ->
  ?knobs:Velum_vmm.Ha.Failover.hb_knobs ->
  ?headroom:int ->
  ?checkpoint_every:int ->
  ?evac_per_round:int ->
  ?crash_loop_budget:int ->
  ?drain_concurrent:int ->
  ?reboot_rounds:int ->
  ?drains:(int * int) list ->
  ?kills:(int * int) list ->
  ?mailbox_capacity:int ->
  ?trace:bool ->
  hosts:int ->
  cap_units:int ->
  workload:vm_desc list ->
  unit ->
  config
(** Defaults: quantum 50k cycles, 24 rounds, seed 0, default HA knobs,
    no headroom, checkpoint every 4 rounds, 2 evacuations per round,
    crash-loop budget 3, 2 concurrent drain migrations, 2 reboot
    rounds, no schedules, unbounded mailboxes, no tracing.

    @raise Invalid_argument on inconsistent sizes, duplicate VM names,
    or a VM that exceeds the admittable per-host capacity. *)

type vm_state = Pending | Placed of int | Evacuating of int | Shed | Degraded

type t

type metrics = {
  availability : float;  (** up VM-rounds / (up + down) *)
  slo_violations : int;  (** down rounds + ballooned (degraded) rounds *)
  migration_bytes : int;  (** bulk bytes on the migration link *)
  evac_mttr_rounds : float;  (** mean declared-dead → running-again *)
  consolidation : float;  (** placed VMs per occupied host (E9) *)
  placed : int;
  shed : int;
  degraded : int;
  evacuated : int;  (** successful checkpoint restores *)
  fenced_alive : int;  (** false-positive declarations, fenced anyway *)
  split_brain : int;  (** always 0 — fencing precedes every restore *)
  cold_moves : int;  (** drain fallbacks via checkpoint *)
}

type result = { control : t; report : string }

val run : ?domains:int -> config -> result
(** Initialise the fleet, admit the initial workload (FFD, priority
    first), and drive {!Parallel.run_fleet} with the control loop as
    the [on_round] hook.  The report is byte-identical across domain
    counts. *)

val report : t -> string
val metrics : t -> metrics
val fleet : t -> Parallel.fleet
val detector : t -> Detector.t
val cluster_monitor : t -> Velum_vmm.Monitor.t
(** Carries the [E_cluster_shed] / [E_cluster_degraded] events. *)

val entry_state : t -> name:string -> vm_state option
val entry_host : t -> name:string -> int option
val entry_evacuations : t -> name:string -> int
