open Velum_vmm
open Velum_devices
module Fault = Velum_util.Fault
module Images = Velum_guests.Images
module Pool = Placement.Pool

(* ---- workload description ---- *)

type priority = Low | Normal | High

let priority_rank = function Low -> 0 | Normal -> 1 | High -> 2
let priority_name = function Low -> "low" | Normal -> "normal" | High -> "high"

type vm_desc = {
  name : string;
  setup : Images.setup;
  prio : priority;
  group : int option;
  arrives : int;
}

let desc ?(prio = Normal) ?group ?(arrives = 0) ~name setup =
  { name; setup; prio; group; arrives }

(* ---- configuration ---- *)

type config = {
  hosts : int;
  quantum : int64;
  rounds : int;
  seed : int64;
  faults : Fault.t option;
  knobs : Ha.Failover.hb_knobs;
  cap_units : int;
  headroom : int;
  checkpoint_every : int;
  evac_per_round : int;
  crash_loop_budget : int;
  drain_concurrent : int;
  reboot_rounds : int;
  drains : (int * int) list;
  kills : (int * int) list;
  workload : vm_desc list;
  mailbox_capacity : int option;
  trace : bool;
}

let config ?(quantum = 50_000L) ?(rounds = 24) ?(seed = 0L) ?faults
    ?(knobs = Ha.Failover.default_hb_knobs) ?(headroom = 0)
    ?(checkpoint_every = 4) ?(evac_per_round = 2) ?(crash_loop_budget = 3)
    ?(drain_concurrent = 2) ?(reboot_rounds = 2) ?(drains = []) ?(kills = [])
    ?mailbox_capacity ?(trace = false) ~hosts ~cap_units ~workload () =
  if hosts <= 0 then invalid_arg "Control.config: hosts must be positive";
  if cap_units <= 0 then
    invalid_arg "Control.config: cap_units must be positive";
  if headroom < 0 || headroom >= cap_units then
    invalid_arg "Control.config: headroom must be in [0, cap_units)";
  if checkpoint_every <= 0 then
    invalid_arg "Control.config: checkpoint_every must be positive";
  if evac_per_round <= 0 then
    invalid_arg "Control.config: evac_per_round must be positive";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d.name then
        invalid_arg
          (Printf.sprintf "Control.config: duplicate VM name %S" d.name);
      Hashtbl.add seen d.name ();
      if d.setup.Images.frames > cap_units - headroom then
        invalid_arg
          (Printf.sprintf "Control.config: %s (%d frames) exceeds admittable \
                           capacity %d"
             d.name d.setup.Images.frames (cap_units - headroom)))
    workload;
  {
    hosts;
    quantum;
    rounds;
    seed;
    faults;
    knobs;
    cap_units;
    headroom;
    checkpoint_every;
    evac_per_round;
    crash_loop_budget;
    drain_concurrent;
    reboot_rounds;
    drains;
    kills;
    workload;
    mailbox_capacity;
    trace;
  }

(* ---- per-VM supervision state ---- *)

type vm_state = Pending | Placed of int | Evacuating of int | Shed | Degraded

type entry = {
  desc : vm_desc;
  units : int;
  mutable state : vm_state;
  mutable vm : Vm.t option;
  mutable checkpoints : int;
  mutable failed_attempts : int; (* evacuation attempts that failed *)
  mutable drain_retries : int; (* failed drain-migration attempts *)
  mutable evacuations : int;
  mutable up_rounds : int;
  mutable down_rounds : int;
  mutable ballooned_rounds : int;
  mutable balloon_frames : int;
  mutable mttr_rounds : int;
}

type t = {
  cfg : config;
  fleet : Parallel.fleet;
  det : Detector.t;
  pool : Pool.t;
  store : Store.t;
      (* ONE shared (network-attached) content-addressed checkpoint
         store for the whole fleet: each VM is a named stream, and
         identical pages — across generations and across VMs booted
         from the same image — are stored once *)
  entries : entry array;
  monitor : Monitor.t; (* cluster-level shed/degrade events *)
  evac_faults : Fault.t;
  drain_faults : Fault.t;
  mutable drain_ops : Drain.t list; (* newest first *)
  mutable evac_queue : int list; (* entry indices, FIFO *)
  mutable fenced_alive : int; (* false-positive declarations fenced *)
  mutable cold_moves : int;
  mutable mig_bytes : int; (* wire bytes of drain live migrations *)
}

(* Stream ids 0-3 belong to the fleet runner and 4-5 to the detector;
   the control plane's own draws start at 6. *)
let mix_seed base ~stream ~i =
  let gold = 0x9E3779B97F4A7C15L in
  Int64.add base
    (Int64.mul gold (Int64.of_int (((stream + 1) * 8191) + i + 1)))

let evac_stream = 6
let drain_stream = 7
let store_stream = 8

let derive_or_none faults ~seed ~stream ~i =
  match faults with
  | Some f -> Fault.derive f ~seed:(mix_seed seed ~stream ~i)
  | None -> Fault.none ()

let round_target cfg round = Int64.mul cfg.quantum (Int64.of_int (round + 1))

let create cfg =
  let pcfg =
    Parallel.config ~quantum:cfg.quantum ~rounds:cfg.rounds ~seed:cfg.seed
      ?faults:cfg.faults
      ~hb_miss_limit:max_int (* the spoke detector is the only oracle *)
      ~trace:cfg.trace
      ~host_frames:(cfg.cap_units + 1024)
      ?mailbox_capacity:cfg.mailbox_capacity ~hosts:cfg.hosts
      ~mk_vms:(fun _ -> [])
      ()
  in
  let fleet = Parallel.init pcfg in
  let det =
    Detector.create ~knobs:cfg.knobs ?faults:cfg.faults ~hosts:cfg.hosts
      ~quantum:cfg.quantum ~seed:cfg.seed ()
  in
  let store =
    Store.create
      ~sectors:
        (Store.fleet_sectors_for
           ~streams:(max 1 (List.length cfg.workload))
           ~image_bytes:
             (List.fold_left
                (fun acc d -> max acc ((d.setup.Images.frames + 8) * 4096))
                4096 cfg.workload))
      ()
  in
  (match cfg.faults with
  | Some f ->
      Store.set_faults store
        (Fault.derive f ~seed:(mix_seed cfg.seed ~stream:store_stream ~i:0))
  | None -> ());
  let entries =
    Array.of_list
      (List.map
         (fun d ->
           {
             desc = d;
             units = d.setup.Images.frames;
             state = Pending;
             vm = None;
             checkpoints = 0;
             failed_attempts = 0;
             drain_retries = 0;
             evacuations = 0;
             up_rounds = 0;
             down_rounds = 0;
             ballooned_rounds = 0;
             balloon_frames = 0;
             mttr_rounds = 0;
           })
         cfg.workload)
  in
  {
    cfg;
    fleet;
    det;
    pool = Pool.create ~hosts:cfg.hosts ~cap_units:cfg.cap_units
        ~headroom:cfg.headroom;
    store;
    entries;
    monitor = Monitor.create ();
    evac_faults = derive_or_none cfg.faults ~seed:cfg.seed ~stream:evac_stream ~i:0;
    drain_faults =
      derive_or_none cfg.faults ~seed:cfg.seed ~stream:drain_stream ~i:0;
    drain_ops = [];
    evac_queue = [];
    fenced_alive = 0;
    cold_moves = 0;
    mig_bytes = 0;
  }

(* ---- checkpointing (shared-storage) ----

   Every VM checkpoints into the ONE fleet store as its own named
   stream, so unchanged pages — across a VM's generations and across
   sibling VMs cloned from the same image — land on the network array
   exactly once.  The commit streams asynchronously from a
   copy-on-write view (the {!Snapshot.capture_live} model), so the
   guest pause charged here is only the fixed metadata pass +
   superblock flush — [Store.commit_cycles ~bytes:0] — not the full
   image stream.  Charging the stream would stall a host for dozens of
   rounds per multi-megabyte image and starve every guest on it; the
   streamed bytes are still accounted by the store itself. *)

let commit_checkpoint t e ~host =
  match e.vm with
  | Some vm when not (Vm.halted vm) ->
      let img = Snapshot.capture vm in
      (match Store.commit ~id:e.desc.name t.store img with
      | Store.Committed _ -> e.checkpoints <- e.checkpoints + 1
      | Store.Torn _ -> () (* previous generation still rules; retried *));
      let hyp = t.fleet.Parallel.nodes.(host).Parallel.hyp in
      Hypervisor.advance_idle hyp
        ~to_:
          (Int64.add (Hypervisor.now hyp) (Store.commit_cycles ~bytes:0))
  | _ -> ()

(* ---- placement ---- *)

let place_fresh t e ~host =
  let node = t.fleet.Parallel.nodes.(host) in
  let vm =
    Hypervisor.create_vm node.Parallel.hyp ~name:e.desc.name
      ~mem_frames:e.desc.setup.Images.frames ~entry:Images.entry ()
  in
  Images.load_vm vm e.desc.setup;
  let node_faults = Host_ctx.faults (Hypervisor.ctx node.Parallel.hyp) in
  if Fault.active node_faults then begin
    Blockdev.set_faults vm.Vm.blk node_faults;
    Virtio_blk.set_faults vm.Vm.vblk node_faults
  end;
  Pool.commit t.pool host ~units:e.units ~group:e.desc.group;
  e.vm <- Some vm;
  e.state <- Placed host;
  Parallel.clear_halted node;
  commit_checkpoint t e ~host

let shed t e =
  e.state <- Shed;
  e.vm <- None;
  Monitor.bump t.monitor Monitor.E_cluster_shed

let degrade t e =
  e.state <- Degraded;
  e.vm <- None;
  Monitor.bump t.monitor Monitor.E_cluster_degraded

(* Balloon lower-priority residents down (hypervisor swapping through
   {!Mem_mgr.evict}) until [e] fits on some host.  Victims are squeezed
   lowest priority first, never above half their reservation, and the
   highest class is never squeezed by an equal-or-lower one.  Returns
   the host that now has room, if the squeeze succeeded. *)
let balloon_make_room t e =
  let rank = priority_rank e.desc.prio in
  let victims_on h =
    let vs = ref [] in
    Array.iteri
      (fun j o ->
        match o.state with
        | Placed h' when h' = h && priority_rank o.desc.prio < rank ->
            vs := (j, o) :: !vs
        | _ -> ())
      t.entries;
    (* lowest priority squeezed first; entry order breaks ties *)
    List.sort
      (fun (i, a) (j, b) ->
        match compare (priority_rank a.desc.prio) (priority_rank b.desc.prio)
        with
        | 0 -> compare i j
        | c -> c)
      !vs
  in
  let balloonable o = max 0 ((o.units / 2) - o.balloon_frames) in
  let admit_cap = t.cfg.cap_units - t.cfg.headroom in
  let group_ok h =
    match e.desc.group with
    | None -> true
    | Some g -> not (List.mem g (Pool.host t.pool h).Pool.groups)
  in
  let rec find h =
    if h >= t.cfg.hosts then None
    else
      let hs = Pool.host t.pool h in
      let free = admit_cap - hs.Pool.used_units in
      let needed = e.units - free in
      let reclaimable =
        List.fold_left (fun acc (_, o) -> acc + balloonable o) 0 (victims_on h)
      in
      if hs.Pool.open_ && group_ok h && needed > 0 && reclaimable >= needed
      then Some (h, needed)
      else find (h + 1)
  in
  match find 0 with
  | None -> None
  | Some (h, needed) ->
      let remaining = ref needed in
      List.iter
        (fun (_, o) ->
          if !remaining > 0 then begin
            let want = min (balloonable o) !remaining in
            match o.vm with
            | Some vm when want > 0 ->
                let got = Mem_mgr.evict vm ~n:want in
                if got > 0 then begin
                  o.balloon_frames <- o.balloon_frames + got;
                  Pool.shrink t.pool h ~units:got;
                  remaining := !remaining - got;
                  Monitor.bump t.monitor Monitor.E_cluster_degraded
                end
            | _ -> ()
          end)
        (victims_on h);
      if !remaining <= 0 then Some h else None

let admit t e ~round =
  let _ = round in
  match Pool.choose t.pool ~units:e.units ?group:e.desc.group with
  | Some h -> place_fresh t e ~host:h
  | None -> (
      match e.desc.prio with
      | Low -> shed t e (* reject the lowest class outright *)
      | Normal | High -> (
          match balloon_make_room t e with
          | Some h -> place_fresh t e ~host:h
          | None ->
              (* the highest class is never given up on: it stays
                 pending and is retried every round *)
              if e.desc.prio = Normal then shed t e))

(* ---- evacuation (restore from the last durable checkpoint) ---- *)

let evacuate_one t idx ~round =
  let e = t.entries.(idx) in
  match e.state with
  | Evacuating died_at -> (
      let now = round_target t.cfg round in
      let fail () =
        e.failed_attempts <- e.failed_attempts + 1;
        if e.failed_attempts > t.cfg.crash_loop_budget then begin
          degrade t e;
          false (* leaves the queue *)
        end
        else true (* stays queued; retried next round *)
      in
      match
        Pool.choose t.pool ~use_headroom:true ~units:e.units
          ?group:e.desc.group
      with
      | None -> true (* no survivor has room yet; keep waiting *)
      | Some h ->
          if Fault.fire t.evac_faults Fault.Cluster_evac ~now then begin
            Fault.observe t.evac_faults Fault.Cluster_evac;
            fail ()
          end
          else (
            match Store.recover ~id:e.desc.name t.store with
            | None -> fail ()
            | Some (img, _gen) -> (
                let node = t.fleet.Parallel.nodes.(h) in
                match Snapshot.restore node.Parallel.hyp img with
                | vm ->
                    Pool.commit t.pool h ~units:e.units ~group:e.desc.group;
                    e.vm <- Some vm;
                    e.state <- Placed h;
                    e.evacuations <- e.evacuations + 1;
                    e.mttr_rounds <- e.mttr_rounds + (round - died_at + 1);
                    Parallel.clear_halted node;
                    false
                | exception Failure _ -> fail ())))
  | _ -> false

(* ---- the per-round control loop (coordinator phase only) ---- *)

let fence t h ~why_alive =
  let node = t.fleet.Parallel.nodes.(h) in
  if node.Parallel.alive && why_alive then t.fenced_alive <- t.fenced_alive + 1;
  Parallel.set_alive node false

let host_died t h ~round =
  (* Fence FIRST: a false positive must be turned into a true positive
     before any twin starts, so a split-brain epoch can never exist. *)
  fence t h ~why_alive:true;
  (* a dead host takes no placements, ever *)
  Pool.cordon t.pool h;
  (* a draining host that dies is no longer draining *)
  t.drain_ops <-
    List.filter
      (fun d -> not (Drain.host d = h && Drain.active d))
      t.drain_ops;
  Array.iteri
    (fun idx e ->
      match e.state with
      | Placed h' when h' = h ->
          Pool.release t.pool h ~units:(e.units - e.balloon_frames)
            ~group:e.desc.group;
          e.balloon_frames <- 0;
          e.state <- Evacuating round;
          e.vm <- None (* the instance died with its host *);
          t.evac_queue <- t.evac_queue @ [ idx ]
      | _ -> ())
    t.entries

let resident_indices t h =
  let r = ref [] in
  Array.iteri
    (fun idx e ->
      match e.state with Placed h' when h' = h -> r := idx :: !r | _ -> ())
    t.entries;
  List.rev !r

(* Drain one VM off [h]: live stop-and-copy, retries accounted, cold
   checkpoint-move once the retry budget is gone. *)
let drain_migrate_one t d ~round () =
  let h = Drain.host d in
  match resident_indices t h with
  | [] -> `No_target
  | idx :: _ -> (
      let e = t.entries.(idx) in
      (* maintenance may spend the evacuation reserve: the point of the
         headroom is that planned and unplanned moves always land *)
      match
        Pool.choose t.pool ~use_headroom:true ~units:e.units
          ?group:e.desc.group
      with
      | None -> `No_target
      | Some target -> (
          let now = round_target t.cfg round in
          let src = t.fleet.Parallel.nodes.(h) in
          let dst = t.fleet.Parallel.nodes.(target) in
          let move_accounting vm' =
            Pool.release t.pool h ~units:(e.units - e.balloon_frames)
              ~group:e.desc.group;
            e.balloon_frames <- 0;
            Pool.commit t.pool target ~units:e.units ~group:e.desc.group;
            e.vm <- Some vm';
            e.state <- Placed target;
            Parallel.clear_halted dst
          in
          let cold_move () =
            (* freeze on the source, restore the image on the target —
               the slow path that always completes *)
            match e.vm with
            | None -> `Failed
            | Some vm -> (
                let img = Snapshot.capture vm in
                match Snapshot.restore dst.Parallel.hyp img with
                | vm' ->
                    Hypervisor.remove_vm src.Parallel.hyp vm;
                    t.cold_moves <- t.cold_moves + 1;
                    move_accounting vm';
                    `Cold_moved
                | exception Failure _ ->
                    e.drain_retries <- e.drain_retries + 1;
                    `Failed)
          in
          if e.drain_retries > Drain.retry_limit d then cold_move ()
          else if Fault.fire t.drain_faults Fault.Cluster_drain ~now then begin
            Fault.observe t.drain_faults Fault.Cluster_drain;
            e.drain_retries <- e.drain_retries + 1;
            `Failed
          end
          else
            match e.vm with
            | None -> `Failed
            | Some vm ->
                let vm', res =
                  Migrate.stop_and_copy ~src:src.Parallel.hyp
                    ~dst:dst.Parallel.hyp ~vm ~link:t.fleet.Parallel.mig_link ()
                in
                t.mig_bytes <- t.mig_bytes + res.Migrate.bytes_sent;
                if res.Migrate.aborted then begin
                  e.drain_retries <- e.drain_retries + 1;
                  `Failed
                end
                else begin
                  move_accounting vm';
                  `Moved
                end))

let step_drains t ~round =
  List.iter
    (fun d ->
      if Drain.active d then begin
        let h = Drain.host d in
        Drain.step d ~round
          ~resident:(List.length (resident_indices t h))
          ~migrate_one:(drain_migrate_one t d ~round)
          ~on_reboot:(fun () ->
            fence t h ~why_alive:false;
            Detector.disarm t.det h)
          ~on_refill:(fun () ->
            let node = t.fleet.Parallel.nodes.(h) in
            Parallel.set_alive node true;
            Parallel.clear_halted node;
            Detector.rearm t.det h ~round;
            Pool.uncordon t.pool h)
      end)
    (List.rev t.drain_ops)

let step t ~round =
  let cfg = t.cfg in
  (* 1. scheduled host kills (ground truth; the detector finds out) *)
  List.iter
    (fun (r, h) ->
      if r = round && h >= 0 && h < cfg.hosts then
        Parallel.set_alive t.fleet.Parallel.nodes.(h) false)
    cfg.kills;
  (* 2. failure detection over the spoke control lanes *)
  let newly_dead =
    Detector.observe_round t.det
      ~alive:(fun i -> t.fleet.Parallel.nodes.(i).Parallel.alive)
      ~round
  in
  List.iter (fun h -> host_died t h ~round) newly_dead;
  (* 3. begin scheduled maintenance *)
  List.iter
    (fun (r, h) ->
      if
        r = round && h >= 0 && h < cfg.hosts
        && t.fleet.Parallel.nodes.(h).Parallel.alive
        && not (List.exists (fun d -> Drain.host d = h && Drain.active d)
                  t.drain_ops)
      then begin
        Pool.cordon t.pool h;
        t.drain_ops <-
          Drain.start ~max_concurrent:cfg.drain_concurrent
            ~reboot_rounds:cfg.reboot_rounds ~host:h ~round ()
          :: t.drain_ops
      end)
    cfg.drains;
  (* 4. advance active drains *)
  step_drains t ~round;
  (* 5. evacuate from checkpoints, restart-storm rate-limited *)
  let rec evac budget queue =
    match queue with
    | [] -> []
    | idx :: rest when budget > 0 ->
        if evacuate_one t idx ~round then idx :: evac (budget - 1) rest
        else evac (budget - 1) rest
    | rest -> rest
  in
  t.evac_queue <- evac cfg.evac_per_round t.evac_queue;
  (* 6. admission of newly arrived (and still-pending) requests, FFD *)
  let pending =
    Array.to_list t.entries
    |> List.filter (fun e -> e.state = Pending && e.desc.arrives <= round)
  in
  let ordered =
    List.sort
      (fun a b ->
        match compare (priority_rank b.desc.prio) (priority_rank a.desc.prio)
        with
        | 0 -> (
            match compare b.units a.units with
            | 0 -> compare a.desc.name b.desc.name
            | c -> c)
        | c -> c)
      pending
  in
  List.iter (fun e -> admit t e ~round) ordered;
  (* 7. keep idle hosts' clocks at the round boundary so a VM placed
     many rounds in is not handed all the skipped budget at once *)
  let target = round_target cfg round in
  Array.iter
    (fun node ->
      if node.Parallel.alive then
        Hypervisor.advance_idle node.Parallel.hyp ~to_:target)
    t.fleet.Parallel.nodes;
  (* 8. periodic durable checkpoints (commit pause charged as idle) *)
  if (round + 1) mod cfg.checkpoint_every = 0 then
    Array.iter
      (fun e ->
        match e.state with
        | Placed h when t.fleet.Parallel.nodes.(h).Parallel.alive ->
            commit_checkpoint t e ~host:h
        | _ -> ())
      t.entries;
  (* 9. availability / SLO accounting *)
  Array.iter
    (fun e ->
      match e.state with
      | Placed h when t.fleet.Parallel.nodes.(h).Parallel.alive ->
          e.up_rounds <- e.up_rounds + 1;
          if e.balloon_frames > 0 then
            e.ballooned_rounds <- e.ballooned_rounds + 1
      | Placed _ | Evacuating _ -> e.down_rounds <- e.down_rounds + 1
      | Pending when e.desc.arrives <= round ->
          e.down_rounds <- e.down_rounds + 1
      | _ -> ())
    t.entries

(* ---- metrics and canonical report ---- *)

type metrics = {
  availability : float;
  slo_violations : int;
  migration_bytes : int;
  evac_mttr_rounds : float;
  consolidation : float;
  placed : int;
  shed : int;
  degraded : int;
  evacuated : int;
  fenced_alive : int;
  split_brain : int;
  cold_moves : int;
}

let metrics t =
  let up = ref 0 and down = ref 0 and slo = ref 0 in
  let placed = ref 0 and shed = ref 0 and degraded = ref 0 in
  let evacs = ref 0 and mttr = ref 0 in
  Array.iter
    (fun e ->
      up := !up + e.up_rounds;
      down := !down + e.down_rounds;
      slo := !slo + e.down_rounds + e.ballooned_rounds;
      (match e.state with
      | Placed _ -> incr placed
      | Shed -> incr shed
      | Degraded -> incr degraded
      | Pending | Evacuating _ -> ());
      evacs := !evacs + e.evacuations;
      mttr := !mttr + e.mttr_rounds)
    t.entries;
  {
    availability =
      (if !up + !down = 0 then 1.0
       else float_of_int !up /. float_of_int (!up + !down));
    slo_violations = !slo;
    migration_bytes = t.mig_bytes;
    evac_mttr_rounds =
      (if !evacs = 0 then 0.0 else float_of_int !mttr /. float_of_int !evacs);
    consolidation = Pool.consolidation t.pool;
    placed = !placed;
    shed = !shed;
    degraded = !degraded;
    evacuated = !evacs;
    fenced_alive = t.fenced_alive;
    (* zero by construction: a declared-dead host is fenced before any
       replacement instance is restored, so two incarnations never run
       in the same round *)
    split_brain = 0;
    cold_moves = t.cold_moves;
  }

let state_name = function
  | Pending -> "pending"
  | Placed h -> Printf.sprintf "host%d" h
  | Evacuating r -> Printf.sprintf "evacuating@%d" r
  | Shed -> "shed"
  | Degraded -> "degraded"

(* The cluster determinism artifact: control-plane state + the fleet
   runner's own canonical report.  Nothing about domain count or wall
   clock may ever appear here. *)
let report t =
  let buf = Buffer.create 8192 in
  let cfg = t.cfg in
  Printf.bprintf buf
    "cluster hosts=%d quantum=%Ld rounds=%d seed=%Ld cap=%d headroom=%d \
     knobs=%d/%Ld/%Ld ckpt_every=%d evac_per_round=%d\n"
    cfg.hosts cfg.quantum cfg.rounds cfg.seed cfg.cap_units cfg.headroom
    cfg.knobs.Ha.Failover.miss_limit cfg.knobs.Ha.Failover.timeout
    cfg.knobs.Ha.Failover.takeover_backoff cfg.checkpoint_every
    cfg.evac_per_round;
  Array.iter
    (fun e ->
      Printf.bprintf buf
        "vm %s: prio=%s group=%s units=%d state=%s up=%d down=%d ckpts=%d \
         evacs=%d fails=%d balloon=%d mttr=%d\n"
        e.desc.name (priority_name e.desc.prio)
        (match e.desc.group with Some g -> string_of_int g | None -> "-")
        e.units (state_name e.state) e.up_rounds e.down_rounds e.checkpoints
        e.evacuations
        (e.failed_attempts + e.drain_retries)
        e.balloon_frames e.mttr_rounds)
    t.entries;
  for h = 0 to cfg.hosts - 1 do
    let hs = Pool.host t.pool h in
    Printf.bprintf buf "pool host %d: open=%b used=%d placed=%d\n" h
      hs.Pool.open_ hs.Pool.used_units hs.Pool.placed
  done;
  let ds = Detector.stats t.det in
  Printf.bprintf buf
    "detector: hb_sent=%d hb_lost=%d probes=%d acks=%d deaths=%d bytes=%d\n"
    ds.Detector.hb_sent ds.Detector.hb_lost ds.Detector.probes_sent
    ds.Detector.acks_seen ds.Detector.deaths
    (Detector.spoke_bytes t.det);
  List.iter
    (fun d ->
      let s = Drain.stats d in
      Printf.bprintf buf
        "drain host %d: done=%b migrations=%d failed=%d cold=%d \
         completed=%s\n"
        (Drain.host d)
        (not (Drain.active d))
        s.Drain.migrations s.Drain.failed_attempts s.Drain.cold_moves
        (match s.Drain.completed_at with
        | Some r -> string_of_int r
        | None -> "-"))
    (List.rev t.drain_ops);
  let dropped =
    Array.fold_left
      (fun acc n ->
        acc + Mailbox.dropped n.Parallel.inbox
        + Mailbox.dropped n.Parallel.outbox)
      0 t.fleet.Parallel.nodes
  in
  Printf.bprintf buf "events %s\n" (Monitor.to_json t.monitor);
  Printf.bprintf buf "mailbox_dropped=%d\n" dropped;
  Printf.bprintf buf
    "store commits=%d torn=%d gc=%d bytes_written=%d logical=%d \
     chunks_live=%d\n"
    (Store.commits t.store) (Store.torn_commits t.store)
    (Store.gc_runs t.store) (Store.bytes_written t.store)
    (Store.logical_bytes t.store) (Store.chunks_live t.store);
  let m = metrics t in
  Printf.bprintf buf
    "metrics availability=%.4f slo=%d mig_bytes=%d evac_mttr=%.2f \
     consolidation=%.2f placed=%d shed=%d degraded=%d evacuated=%d \
     cold_moves=%d fenced_alive=%d split_brain=%d\n"
    m.availability m.slo_violations m.migration_bytes m.evac_mttr_rounds
    m.consolidation m.placed m.shed m.degraded m.evacuated m.cold_moves
    m.fenced_alive m.split_brain;
  Buffer.add_string buf (Parallel.report t.fleet);
  Buffer.contents buf

type result = { control : t; report : string }

let run ?(domains = 1) cfg =
  let t = create cfg in
  (* initial admission happens before cycle 0, FFD over the whole
     starting set — exactly the single-shot consolidation case *)
  let initial =
    Array.to_list t.entries |> List.filter (fun e -> e.desc.arrives <= 0)
  in
  let ordered =
    List.sort
      (fun a b ->
        match compare (priority_rank b.desc.prio) (priority_rank a.desc.prio)
        with
        | 0 -> (
            match compare b.units a.units with
            | 0 -> compare a.desc.name b.desc.name
            | c -> c)
        | c -> c)
      initial
  in
  List.iter (fun e -> admit t e ~round:0) ordered;
  Parallel.run_fleet ~domains
    ~on_round:(fun _fleet ~round -> step t ~round)
    t.fleet;
  { control = t; report = report t }

let fleet t = t.fleet
let cluster_monitor t = t.monitor
let entry_state t ~name =
  let found = ref None in
  Array.iter
    (fun e -> if e.desc.name = name then found := Some e.state)
    t.entries;
  !found

let entry_host t ~name =
  match entry_state t ~name with Some (Placed h) -> Some h | _ -> None

let entry_evacuations t ~name =
  let found = ref 0 in
  Array.iter
    (fun e -> if e.desc.name = name then found := e.evacuations)
    t.entries;
  !found

let detector t = t.det
