(** Reusable phase barrier for domains (mutex + condition variable).

    [await] blocks until all [parties] have arrived, then releases the
    whole cohort and resets for the next phase.  Besides synchronising,
    the barrier's mutex establishes the happens-before edge the round
    protocol relies on: everything a domain wrote before [await] is
    visible to every domain after the matching release, so plain (non
    atomic) node state can be handed across the barrier without
    per-field synchronisation. *)

type t

val create : parties:int -> t
(** @raise Invalid_argument if [parties <= 0]. *)

val await : t -> unit
