(** Rolling host maintenance: cordon → drain → reboot → refill.

    A pure per-host state machine, driven once per round from the
    coordinator phase; the control plane supplies the actual mechanics
    (target selection, live migration, checkpoint fallback) as the
    [migrate_one] callback, so this module owns only the protocol —
    bounded concurrent migrations, retry/abort accounting, a fixed
    reboot outage, and the refill hand-back. *)

type phase =
  | Cordoned  (** closed to placement; VMs still running *)
  | Draining  (** mass live migration in progress *)
  | Rebooting  (** host down for maintenance; detector disarmed *)
  | Done

type t

val start :
  ?max_concurrent:int ->
  ?retry_limit:int ->
  ?reboot_rounds:int ->
  host:int ->
  round:int ->
  unit ->
  t
(** Defaults: at most 2 migrations per round, 3 retries per VM before
    the control plane falls back to a cold move, 2 rounds of reboot
    outage.

    @raise Invalid_argument on non-positive concurrency/reboot or
    negative retry limit. *)

val step :
  t ->
  round:int ->
  resident:int ->
  migrate_one:(unit -> [ `Moved | `Cold_moved | `Failed | `No_target ]) ->
  on_reboot:(unit -> unit) ->
  on_refill:(unit -> unit) ->
  unit
(** One round of progress.  While draining, [migrate_one] is invoked up
    to [max_concurrent] times (or until [resident] VMs are accounted
    for): [`Moved] = live migration succeeded, [`Cold_moved] = the
    control plane gave up on live migration and restored the VM from
    its checkpoint elsewhere, [`Failed] = one attempt failed (retry
    next call/round), [`No_target] = no host can take the next VM —
    stalls this round.  When the host empties, [on_reboot] fires once
    (kill + disarm detector), then after [reboot_rounds] rounds
    [on_refill] fires once (revive + rearm + uncordon). *)

val host : t -> int
val phase : t -> phase
val retry_limit : t -> int
val active : t -> bool
(** [false] once [Done]. *)

type stats = {
  migrations : int;  (** successful live migrations *)
  failed_attempts : int;  (** per-attempt failures (retried) *)
  cold_moves : int;  (** retry-exhausted VMs moved via checkpoint *)
  completed_at : int option;  (** round the host came back *)
}

val stats : t -> stats
