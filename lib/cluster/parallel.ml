open Velum_machine
open Velum_devices
open Velum_vmm
module Fault = Velum_util.Fault

(* ---- configuration ---- *)

type vm_spec = {
  vname : string;
  setup : Velum_guests.Images.setup;
  paging : Vm.paging_mode;
  pv : bool;
  engine : Velum_machine.Engine.kind;
}

let spec ?(paging = Vm.Nested_paging) ?(pv = false)
    ?(engine = Velum_machine.Engine.Interp) ~name setup =
  { vname = name; setup; paging; pv; engine }

type config = {
  hosts : int;
  quantum : int64;
  rounds : int;
  mk_vms : int -> vm_spec list;
  seed : int64;
  faults : Fault.t option;
  hb_miss_limit : int;
  hb_timeout : int64;
  migrate_every : int;
  fail_host : (int * int) option;
  trace : bool;
  host_frames : int option;
  mailbox_capacity : int option;
  wire : (int -> Hypervisor.t -> unit) option;
}

let config ?(quantum = 200_000L) ?(rounds = 8) ?(seed = 0L) ?faults
    ?(hb_miss_limit = 3) ?(hb_timeout = 0L) ?(migrate_every = 0) ?fail_host
    ?(trace = false) ?host_frames ?mailbox_capacity ?wire ~hosts ~mk_vms () =
  if hosts <= 0 then invalid_arg "Parallel.config: hosts must be positive";
  if Int64.compare quantum 0L <= 0 then
    invalid_arg "Parallel.config: quantum must be positive";
  if rounds <= 0 then invalid_arg "Parallel.config: rounds must be positive";
  if Int64.compare hb_timeout 0L < 0 then
    invalid_arg "Parallel.config: hb_timeout must be non-negative";
  (match host_frames with
  | Some n when n <= 0 ->
      invalid_arg "Parallel.config: host_frames must be positive"
  | _ -> ());
  {
    hosts;
    quantum;
    rounds;
    mk_vms;
    seed;
    faults;
    hb_miss_limit;
    hb_timeout;
    migrate_every;
    fail_host;
    trace;
    host_frames;
    mailbox_capacity;
    wire;
  }

(* ---- fleet state ---- *)

type node = {
  id : int;
  hyp : Hypervisor.t;
  inbox : Mailbox.t;
  outbox : Mailbox.t;
  mutable alive : bool; (* injected host failure flips this *)
  mutable halted : bool; (* every VM halted *)
  mutable hb_sent : int;
  mutable hb_recv : int;
  mutable hb_miss_streak : int;
  mutable last_hb_round : int; (* last round a heartbeat was absorbed *)
  mutable pred_dead_at : int option; (* round the predecessor was declared dead *)
  mutable junk_frames : int; (* corrupted payloads delivered by the wire *)
  mutable error : exn option; (* escaped from a worker; re-raised by the coordinator *)
}

type fleet = {
  cfg : config;
  nodes : node array;
  ring : Link.t array; (* ring.(i): node i -> node (i+1) mod hosts *)
  mig_link : Link.t; (* dedicated migration channel, coordinator-owned *)
  mutable migrations : int;
  mutable mig_aborts : int;
  mutable mig_pages : int;
}

(* Distinct deterministic seed per consumer: the fleet seed is mixed
   with a per-purpose stream id and the host index so no two RNG streams
   in the process coincide. *)
let mix_seed base ~stream ~i =
  let gold = 0x9E3779B97F4A7C15L in
  Int64.add base
    (Int64.mul gold (Int64.of_int (((stream + 1) * 8191) + i + 1)))

let derived_faults cfg ~stream ~i =
  match cfg.faults with
  | None -> None
  | Some f -> Some (Fault.derive f ~seed:(mix_seed cfg.seed ~stream ~i))

let init cfg =
  let nodes =
    Array.init cfg.hosts (fun i ->
        let specs = cfg.mk_vms i in
        let frames_needed =
          List.fold_left (fun acc s -> acc + s.setup.Velum_guests.Images.frames) 0 specs
        in
        let frames =
          match cfg.host_frames with
          | Some n -> n
          | None -> frames_needed + 1024
        in
        let host = Host.create ~frames () in
        let node_faults =
          match derived_faults cfg ~stream:0 ~i with
          | Some f -> f
          | None -> Fault.none ()
        in
        let ctx =
          Host_ctx.create ~host ~seed:(mix_seed cfg.seed ~stream:1 ~i)
            ~faults:node_faults ()
        in
        let hyp = Hypervisor.create ~ctx () in
        if cfg.trace then Hypervisor.set_trace hyp (Trace.create ());
        List.iter
          (fun s ->
            let vm =
              Hypervisor.create_vm hyp ~name:s.vname
                ~mem_frames:s.setup.Velum_guests.Images.frames ~paging:s.paging
                ~pv:(if s.pv then Vm.full_pv else Vm.no_pv)
                ~engine:s.engine ~entry:Velum_guests.Images.entry ()
            in
            Velum_guests.Images.load_vm vm s.setup;
            if Fault.active node_faults then begin
              Blockdev.set_faults vm.Vm.blk node_faults;
              Virtio_blk.set_faults vm.Vm.vblk node_faults
            end)
          specs;
        (* intra-host fabric (switch, vnet adapters, tickers): runs
           before the first round, in host order, on the coordinator *)
        Option.iter (fun w -> w i hyp) cfg.wire;
        {
          id = i;
          hyp;
          inbox = Mailbox.create ?capacity:cfg.mailbox_capacity ();
          outbox = Mailbox.create ?capacity:cfg.mailbox_capacity ();
          alive = true;
          halted = false;
          hb_sent = 0;
          hb_recv = 0;
          hb_miss_streak = 0;
          last_hb_round = 0;
          pred_dead_at = None;
          junk_frames = 0;
          error = None;
        })
  in
  let ring =
    Array.init cfg.hosts (fun i ->
        let l = Link.create () in
        (match derived_faults cfg ~stream:2 ~i with
        | Some f -> Link.set_faults l f
        | None -> ());
        l)
  in
  let mig_link = Link.create () in
  (match derived_faults cfg ~stream:3 ~i:0 with
  | Some f -> Link.set_faults mig_link f
  | None -> ());
  { cfg; nodes; ring; mig_link; migrations = 0; mig_aborts = 0; mig_pages = 0 }

(* ---- worker phase (runs on a domain; touches only this node) ---- *)

let round_target cfg round = Int64.mul cfg.quantum (Int64.of_int (round + 1))

let is_hb payload = String.length payload >= 3 && String.sub payload 0 3 = "HB "

let step_node fleet node ~round =
  let cfg = fleet.cfg in
  if node.alive then begin
    (* 1. absorb the frames the coordinator routed in at the last
       barrier (heartbeats from the ring predecessor) *)
    let frames = Mailbox.drain node.inbox in
    let saw_hb = ref false in
    List.iter
      (fun f ->
        if is_hb f.Mailbox.payload then begin
          saw_hb := true;
          node.hb_recv <- node.hb_recv + 1
        end
        else node.junk_frames <- node.junk_frames + 1)
      frames;
    (* 2. failure detection: heartbeats sent at barrier r arrive during
       round r+1, so the detector only arms from round 1 on *)
    if cfg.hosts > 1 && round >= 1 && node.pred_dead_at = None then begin
      if !saw_hb then begin
        node.hb_miss_streak <- 0;
        node.last_hb_round <- round
      end
      else begin
        node.hb_miss_streak <- node.hb_miss_streak + 1;
        (* a timeout floor (in cycles, converted via the quantum) must
           also be exceeded before the miss count declares the death;
           the default 0 keeps the historical miss-count-only rule *)
        let starved =
          Int64.unsigned_compare
            (Int64.mul (Int64.of_int (round - node.last_hb_round)) cfg.quantum)
            cfg.hb_timeout
          >= 0
        in
        if node.hb_miss_streak >= cfg.hb_miss_limit && starved then begin
          node.pred_dead_at <- Some round;
          (* surface the detection in the ordinary telemetry so the
             fleet report and the monitor counters agree *)
          match node.hyp.Hypervisor.vms with
          | vm :: _ -> Monitor.bump vm.Vm.monitor Monitor.E_ha_failover
          | [] -> ()
        end
      end
    end;
    (* 3. run this host's quantum.  The budget targets the absolute
       round boundary: a host that overshot the previous boundary
       (idle fast-forward can do that) simply runs less now. *)
    let target = round_target cfg round in
    let now = Hypervisor.now node.hyp in
    let budget =
      if Int64.unsigned_compare target now > 0 then Int64.sub target now else 0L
    in
    (match Hypervisor.run node.hyp ~budget with
    | Hypervisor.All_halted -> node.halted <- true
    | Hypervisor.Out_of_budget | Hypervisor.Idle_deadlock
    | Hypervisor.Until_satisfied ->
        ());
    (* 4. emit this round's heartbeat toward the ring successor; the
       coordinator puts it on the wire at the barrier *)
    if cfg.hosts > 1 then begin
      node.hb_sent <- node.hb_sent + 1;
      (* a [false] return means a bounded outbox shed the frame; the
         mailbox's dropped counter keeps the evidence *)
      ignore
        (Mailbox.post node.outbox
           {
             Mailbox.src = node.id;
             dst = (node.id + 1) mod cfg.hosts;
             sent_at = target;
             payload = Printf.sprintf "HB %d %d" node.id round;
           })
    end
  end

(* ---- barrier phase (coordinator only; workers are parked) ---- *)

(* Everything below runs strictly sequentially, in fixed node order, so
   Link state (arrival heaps, fault RNG draws, line occupancy) evolves
   identically whatever the domain count was during the worker phase. *)
let exchange fleet ~round =
  let cfg = fleet.cfg in
  let target = round_target cfg round in
  if cfg.hosts > 1 then begin
    (* put outbound frames on the wire, node order then posting order;
       heartbeats can additionally be lost before reaching the wire
       (the [hb.loss] site, as in {!Ha.Failover}) *)
    Array.iter
      (fun node ->
        List.iter
          (fun f ->
            let link = fleet.ring.(f.Mailbox.src) in
            let lost =
              is_hb f.Mailbox.payload
              && Fault.fire (Link.faults link) Fault.Hb_loss
                   ~now:f.Mailbox.sent_at
            in
            if not lost then
              ignore
                (Link.send_control link ~from:`A ~now:f.Mailbox.sent_at
                   ~payload:f.Mailbox.payload))
          (Mailbox.drain node.outbox))
      fleet.nodes;
    (* deliver whatever arrives within the next quantum into the
       successor's inbox, to be absorbed at the start of round+1 *)
    let horizon = Int64.add target cfg.quantum in
    Array.iteri
      (fun i link ->
        let dst = (i + 1) mod cfg.hosts in
        List.iter
          (fun payload ->
            ignore
              (Mailbox.post fleet.nodes.(dst).inbox
                 { Mailbox.src = i; dst; sent_at = target; payload }))
          (Link.poll_control link ~at:`B ~now:horizon))
      fleet.ring
  end;
  (* scheduled migration storm: move one VM one step around the ring *)
  if
    cfg.migrate_every > 0 && cfg.hosts > 1
    && (round + 1) mod cfg.migrate_every = 0
  then begin
    let si = fleet.migrations mod cfg.hosts in
    let di = (si + 1) mod cfg.hosts in
    let src = fleet.nodes.(si) and dst = fleet.nodes.(di) in
    if src.alive && dst.alive then
      match
        List.find_opt (fun vm -> not (Vm.halted vm)) src.hyp.Hypervisor.vms
      with
      | None -> ()
      | Some vm ->
          let _moved, r =
            Migrate.stop_and_copy ~src:src.hyp ~dst:dst.hyp ~vm
              ~link:fleet.mig_link ()
          in
          fleet.migrations <- fleet.migrations + 1;
          fleet.mig_pages <- fleet.mig_pages + r.Migrate.pages_sent;
          if r.Migrate.aborted then fleet.mig_aborts <- fleet.mig_aborts + 1
  end

let apply_failure fleet ~round =
  match fleet.cfg.fail_host with
  | Some (r, h) when r = round && h >= 0 && h < fleet.cfg.hosts ->
      fleet.nodes.(h).alive <- false
  | _ -> ()

let all_done fleet =
  Array.for_all (fun n -> (not n.alive) || n.halted) fleet.nodes

let check_worker_errors fleet =
  Array.iter
    (fun n -> match n.error with Some e -> raise e | None -> ())
    fleet.nodes

(* ---- drivers ---- *)

let no_hook (_ : fleet) ~round:(_ : int) = ()

let run_sequential ?(on_round = no_hook) fleet =
  let cfg = fleet.cfg in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < cfg.rounds do
    apply_failure fleet ~round:!round;
    Array.iter (fun n -> step_node fleet n ~round:!round) fleet.nodes;
    exchange fleet ~round:!round;
    on_round fleet ~round:!round;
    if all_done fleet then continue := false;
    incr round
  done

let run_parallel ?(on_round = no_hook) fleet ~domains =
  let cfg = fleet.cfg in
  let m = min domains cfg.hosts in
  (* workers + coordinator meet at both edges of every worker phase *)
  let start_b = Barrier.create ~parties:(m + 1) in
  let done_b = Barrier.create ~parties:(m + 1) in
  let round = ref 0 in
  let stop = ref false in
  (* [round] and [stop] are written by the coordinator strictly before
     it enters [start_b] and read by workers strictly after they leave
     it; the barrier mutex orders those accesses, so plain refs are
     race-free here. *)
  let worker w =
    let live = ref true in
    while !live do
      Barrier.await start_b;
      if !stop then live := false
      else begin
        let r = !round in
        Array.iteri
          (fun i n ->
            if i mod m = w then
              try step_node fleet n ~round:r
              with e -> n.error <- Some e)
          fleet.nodes;
        Barrier.await done_b
      end
    done
  in
  let doms = Array.init m (fun w -> Domain.spawn (fun () -> worker w)) in
  let shutdown () =
    stop := true;
    Barrier.await start_b;
    Array.iter Domain.join doms
  in
  (try
     let continue = ref true in
     while !continue && !round < cfg.rounds do
       apply_failure fleet ~round:!round;
       Barrier.await start_b;
       Barrier.await done_b;
       check_worker_errors fleet;
       exchange fleet ~round:!round;
       on_round fleet ~round:!round;
       if all_done fleet then continue := false;
       round := !round + 1
     done
   with e ->
     shutdown ();
     raise e);
  shutdown ();
  check_worker_errors fleet

(* ---- canonical report ---- *)

let vm_instret vm =
  Array.fold_left
    (fun acc vcpu -> Int64.add acc vcpu.Vcpu.state.Cpu.instret)
    0L vm.Vm.vcpus

(* The determinism artifact: everything simulated, nothing about how the
   simulation was executed.  Domain count, worker-to-domain assignment
   and wall-clock time must never appear here — the whole point is that
   this string is byte-identical for any [domains]. *)
let report fleet =
  let cfg = fleet.cfg in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "fleet hosts=%d quantum=%Ld rounds=%d seed=%Ld faults=%b migrate_every=%d \
     fail_host=%s\n"
    cfg.hosts cfg.quantum cfg.rounds cfg.seed
    (match cfg.faults with Some f -> Fault.active f | None -> false)
    cfg.migrate_every
    (match cfg.fail_host with
    | Some (r, h) -> Printf.sprintf "%d@round%d" h r
    | None -> "none");
  Array.iter
    (fun node ->
      Printf.bprintf buf
        "host %d: alive=%b halted=%b cycles=%Ld guest=%Ld vmm=%Ld idle=%Ld \
         sched=%d hb_sent=%d hb_recv=%d junk=%d pred_dead=%s\n"
        node.id node.alive node.halted
        (Hypervisor.now node.hyp)
        (Hypervisor.guest_cycles node.hyp)
        (Hypervisor.vmm_cycles node.hyp)
        node.hyp.Hypervisor.idle_cycles node.hyp.Hypervisor.sched_decisions
        node.hb_sent node.hb_recv node.junk_frames
        (match node.pred_dead_at with
        | Some r -> Printf.sprintf "round%d" r
        | None -> "no");
      List.iter
        (fun vm ->
          Vm.publish_stats vm;
          Printf.bprintf buf "  vm %d %s: halted=%b instret=%Ld console=%S %s\n"
            vm.Vm.id vm.Vm.name (Vm.halted vm) (vm_instret vm)
            (Vm.console_output vm)
            (Monitor.to_json vm.Vm.monitor))
        node.hyp.Hypervisor.vms;
      match Hypervisor.trace node.hyp with
      | Some tr ->
          Printf.bprintf buf "  trace %d %d\n" (Trace.events_recorded tr)
            (String.length (Trace.export_string tr))
      | None -> ())
    fleet.nodes;
  let fault_summary f =
    String.concat ""
      (List.filter_map
         (fun site ->
           let inj = Fault.injected f site in
           if inj > 0 then
             Some (Printf.sprintf " %s=%d" (Fault.site_name site) inj)
           else None)
         Fault.all_sites)
  in
  Array.iteri
    (fun i link ->
      Printf.bprintf buf "link %d->%d: bytes=%d in_flight=%d%s\n" i
        ((i + 1) mod cfg.hosts)
        (Link.bytes_sent link) (Link.in_flight link)
        (if Option.is_some cfg.faults then
           " faults:" ^ fault_summary (Link.faults link)
         else ""))
    fleet.ring;
  Printf.bprintf buf "migrations=%d aborts=%d pages=%d mig_bytes=%d\n"
    fleet.migrations fleet.mig_aborts fleet.mig_pages
    (Link.bytes_sent fleet.mig_link);
  (match cfg.faults with
  | Some _ ->
      Array.iter
        (fun node ->
          let f = Host_ctx.faults (Hypervisor.ctx node.hyp) in
          Printf.bprintf buf "faults host %d:%s\n" node.id (fault_summary f))
        fleet.nodes
  | None -> ());
  Buffer.contents buf

let traces fleet =
  Array.to_list fleet.nodes
  |> List.filter_map (fun node ->
         Option.map
           (fun tr -> (node.id, Trace.export_string tr))
           (Hypervisor.trace node.hyp))

type result = { fleet : fleet; report : string }

let set_alive node v = node.alive <- v
let clear_halted node = node.halted <- false

let run_fleet ?(domains = 1) ?on_round fleet =
  if domains <= 0 then
    invalid_arg "Parallel.run_fleet: domains must be positive";
  if domains = 1 then run_sequential ?on_round fleet
  else run_parallel ?on_round fleet ~domains

let run ?(domains = 1) ?on_round cfg =
  if domains <= 0 then invalid_arg "Parallel.run: domains must be positive";
  let fleet = init cfg in
  run_fleet ~domains ?on_round fleet;
  { fleet; report = report fleet }
