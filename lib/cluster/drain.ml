type phase = Cordoned | Draining | Rebooting | Done

type t = {
  host : int;
  started_at : int;
  max_concurrent : int;
  retry_limit : int;
  reboot_rounds : int;
  mutable phase : phase;
  mutable reboot_left : int;
  mutable migrations : int;
  mutable failed_attempts : int;
  mutable cold_moves : int;
  mutable completed_at : int option;
}

let start ?(max_concurrent = 2) ?(retry_limit = 3) ?(reboot_rounds = 2) ~host
    ~round () =
  if max_concurrent <= 0 then
    invalid_arg "Drain.start: max_concurrent must be positive";
  if retry_limit < 0 then
    invalid_arg "Drain.start: retry_limit must be non-negative";
  if reboot_rounds <= 0 then
    invalid_arg "Drain.start: reboot_rounds must be positive";
  {
    host;
    started_at = round;
    max_concurrent;
    retry_limit;
    reboot_rounds;
    phase = Cordoned;
    reboot_left = reboot_rounds;
    migrations = 0;
    failed_attempts = 0;
    cold_moves = 0;
    completed_at = None;
  }

let host t = t.host
let phase t = t.phase
let retry_limit t = t.retry_limit
let active t = t.phase <> Done

let step t ~round ~resident ~migrate_one ~on_reboot ~on_refill =
  match t.phase with
  | Done -> ()
  | Rebooting ->
      t.reboot_left <- t.reboot_left - 1;
      if t.reboot_left <= 0 then begin
        on_refill ();
        t.phase <- Done;
        t.completed_at <- Some round
      end
  | Cordoned | Draining ->
      t.phase <- Draining;
      (* bounded concurrent migrations per round; a target shortage
         stalls the round, not the drain *)
      let left = ref resident in
      let budget = ref t.max_concurrent in
      let stalled = ref false in
      while !left > 0 && !budget > 0 && not !stalled do
        decr budget;
        match migrate_one () with
        | `Moved ->
            t.migrations <- t.migrations + 1;
            decr left
        | `Cold_moved ->
            (* live migration exhausted its retries; the control plane
               fell back to a checkpoint restore on the target *)
            t.cold_moves <- t.cold_moves + 1;
            decr left
        | `Failed -> t.failed_attempts <- t.failed_attempts + 1
        | `No_target -> stalled := true
      done;
      if !left = 0 then begin
        on_reboot ();
        t.phase <- Rebooting
      end

type stats = {
  migrations : int;
  failed_attempts : int;
  cold_moves : int;
  completed_at : int option;
}

let stats (t : t) =
  {
    migrations = t.migrations;
    failed_attempts = t.failed_attempts;
    cold_moves = t.cold_moves;
    completed_at = t.completed_at;
  }
