(** Fleet-wide heartbeat failure detector for the cluster control plane.

    Hub-and-spoke over the ordinary {!Velum_devices.Link} control lanes:
    every host owns a spoke link to the control plane.  Each round the
    host (simulated coordinator-side, so the whole protocol runs in the
    strictly-sequential barrier phase) answers outstanding probes and
    emits one cycle-stamped heartbeat; the hub polls the spoke at the
    round horizon, counts consecutive misses, and — once the miss limit
    {e and} the timeout have both been exceeded — declares the host dead
    exactly once.  While a host is merely suspect, the hub probes it
    with exponential backoff; an answered probe (ACK) clears suspicion
    like a heartbeat does.

    Tuning reuses {!Velum_vmm.Ha.Failover.hb_knobs} verbatim:
    [miss_limit] is the consecutive-miss threshold, [timeout] (cycles,
    converted to rounds) a floor on heartbeat-less time, and
    [takeover_backoff] (cycles → rounds) the probe backoff base.

    Fault exposure: each spoke derives an independent child plan from
    the base plan (streams 4/5, disjoint from the fleet runner's 0-3).
    The [cluster.hb] site eats heartbeats/ACKs {e before} the wire;
    link-level sites ([drop], [partition], [delay]...) apply on the
    spoke itself.  Everything is deterministic in the fleet seed. *)

type host_health =
  | Up
  | Suspect  (** misses accumulating; probes in flight *)
  | Dead  (** declared — never spontaneously revived; see {!rearm} *)
  | Disarmed  (** maintenance reboot in progress; misses don't count *)

type t

val create :
  ?knobs:Velum_vmm.Ha.Failover.hb_knobs ->
  ?faults:Velum_util.Fault.t ->
  hosts:int ->
  quantum:int64 ->
  seed:int64 ->
  unit ->
  t
(** One spoke per host.  [quantum] must match the fleet runner's round
    quantum — heartbeats are stamped at round boundaries.

    @raise Invalid_argument on non-positive hosts, quantum or miss
    limit. *)

val observe_round : t -> alive:(int -> bool) -> round:int -> int list
(** Drive one detection round.  [alive i] is ground truth: whether host
    [i] actually emits a heartbeat this round (dead or rebooting hosts
    do not).  Returns the hosts newly declared dead this round, in
    ascending id order.  Must be called from the coordinator phase,
    once per round, in round order. *)

val health : t -> int -> host_health
val declared_at : t -> int -> int option
(** Round the host was declared dead, if it was. *)

val disarm : t -> int -> unit
(** Stop counting misses for a host the control plane {e knows} is down
    (cordoned reboot) — a planned outage must not look like a death. *)

val rearm : t -> int -> round:int -> unit
(** Resume watching a host after reboot/recovery: health [Up], misses
    cleared, last-seen set to [round]. *)

val faults : t -> int -> Velum_util.Fault.t
(** Host [i]'s derived pre-wire plan (the [cluster.hb] counters live
    here). *)

val spoke_bytes : t -> int
(** Control-lane bytes across all spokes (heartbeats + probes + ACKs). *)

type stats = {
  hb_sent : int;
  hb_lost : int;  (** eaten pre-wire by [cluster.hb] (HBs and ACKs) *)
  probes_sent : int;
  acks_seen : int;
  deaths : int;
}

val stats : t -> stats
