(** Bootable guest images: pair a configured kernel with a user workload
    and load the result onto bare metal or into a VM. *)

open Velum_isa

type setup = {
  kernel : Asm.image;
  user : Asm.image;
  config : Kernel.config;
  frames : int;  (** guest frames the layout needs *)
}

val plan :
  ?pv_console:bool ->
  ?pv_pt:bool ->
  ?hcall_ok:bool ->
  ?heap_pages:int ->
  ?heap_superpages:bool ->
  ?timer_interval:int64 ->
  ?vnet:bool ->
  user:Asm.image ->
  unit ->
  setup
(** Build the kernel to fit [user] with the given features and compute
    the memory requirement. *)

val entry : int64
(** Boot entry point ({!Abi.kernel_base}). *)

val load_native : Velum_devices.Platform.t -> setup -> unit
(** Load both images and point the hart at the kernel entry (the
    platform must have at least [setup.frames] frames). *)

val load_vm : Velum_vmm.Vm.t -> setup -> unit
(** Load both images into guest memory; the VM's vCPU 0 must have been
    created with [entry] as its boot PC (which
    {!Velum_vmm.Hypervisor.create_vm} callers do by passing
    [~entry:Images.entry]). *)
