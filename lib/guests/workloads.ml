open Velum_isa
open Asm

let user_stack_top =
  Int64.add Abi.user_stack_base
    (Int64.of_int (Abi.user_stack_pages * Arch.page_size))

(* The kernel enters user mode with the hart id in r10: each hart gets
   a private 1 KiB slice of the user stack region.  r13 is the kernel's
   thread pointer and must never be touched. *)
let prologue =
  [
    label "u_entry";
    li r14 user_stack_top;
    li r9 1024L;
    mul r9 r9 r10;
    sub r14 r14 r9;
  ]

let exit_ = [ li r1 Abi.sys_exit; ecall ]

let build items = Asm.assemble ~origin:Abi.user_base items

let cpu_spin ~iters =
  build
    (prologue
    @ [
        li r2 iters;
        li r3 0x1234_5678L;
        label "u_loop";
        (* a small mix of ALU work per iteration *)
        xori r3 r3 0x5AL;
        slli r4 r3 7L;
        add r3 r3 r4;
        addi r2 r2 (-1L);
        bne r2 r0 "u_loop";
      ]
    @ exit_)

let branch_mix ~iters =
  build
    (prologue
    @ [
        li r2 iters;
        li r3 0xACE1L;
        li r5 0L;
        li r6 0L;
        li r8 0L;
        label "u_loop";
        (* a 16-bit Galois LFSR step: the low bit decides a
           data-dependent branch each iteration, so control flow hops
           between several short blocks in an input-dependent order *)
        andi r4 r3 1L;
        srli r3 r3 1L;
        beq r4 r0 "u_even";
        xori r3 r3 0xB400L;
        addi r5 r5 1L;
        jmp "u_next";
        label "u_even";
        addi r6 r6 1L;
        label "u_next";
        andi r7 r3 3L;
        beq r7 r0 "u_skip";
        add r8 r8 r7;
        label "u_skip";
        addi r2 r2 (-1L);
        bne r2 r0 "u_loop";
      ]
    @ exit_)

let stream_copy ~words ~iters =
  let bytes = Int64.of_int (8 * words) in
  build
    (prologue
    @ [
        li r6 (Int64.of_int iters);
        label "u_outer";
        li r7 Abi.heap_base;
        (* dst = heap + words*8, same size *)
        li r8 Abi.heap_base;
        li r9 bytes;
        add r8 r8 r9;
        li r5 (Int64.of_int words);
        label "u_inner";
        ld r9 r7 0L;
        sd r9 r8 0L;
        addi r7 r7 8L;
        addi r8 r8 8L;
        addi r5 r5 (-1L);
        bne r5 r0 "u_inner";
        addi r6 r6 (-1L);
        bne r6 r0 "u_outer";
      ]
    @ exit_)

let syscall_stress ~num ~count =
  build
    (prologue
    @ [
        li r6 count;
        label "u_loop";
        li r1 num;
        li r2 0L;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

let syscall_loop ~count = syscall_stress ~num:Abi.sys_nop ~count

let memwalk ~pages ~iters ~write =
  let touch =
    if write then [ ld r9 r7 0L; addi r9 r9 1L; sd r9 r7 0L ] else [ ld r9 r7 0L ]
  in
  build
    (prologue
    @ [
        li r5 (Int64.of_int pages);
        li r6 (Int64.of_int iters);
        label "u_outer";
        li r7 Abi.heap_base;
        li r8 0L;
        label "u_inner";
      ]
    @ touch
    @ [
        addi r7 r7 4096L;
        addi r8 r8 1L;
        blt r8 r5 "u_inner";
        addi r6 r6 (-1L);
        bne r6 r0 "u_outer";
      ]
    @ exit_)

let pt_churn ?(batch = 1) ~count () =
  let va = 0x0200_0000L in
  build
    (prologue
    @ [
        li r6 (Int64.of_int count);
        label "u_loop";
        (* map a batch of pages in one syscall ... *)
        li r1 Abi.sys_map;
        li r2 va;
        li r3 (Int64.of_int batch);
        ecall;
        (* ... touch each so the mappings are really used ... *)
        li r7 va;
        li r8 (Int64.of_int batch);
        label "u_touch";
        sd r8 r7 0L;
        addi r7 r7 4096L;
        addi r8 r8 (-1L);
        bne r8 r0 "u_touch";
        (* ... and unmap the batch in one syscall. *)
        li r1 Abi.sys_unmap;
        li r2 va;
        li r3 (Int64.of_int batch);
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

let blk_read ~sector ~count ~reps =
  build
    (prologue
    @ [
        li r6 (Int64.of_int reps);
        label "u_loop";
        li r1 Abi.sys_blk_read;
        li r2 (Int64.of_int sector);
        li r3 (Int64.of_int count);
        li r4 Abi.heap_base;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

let vblk_read ~sector ~count ~reps =
  build
    (prologue
    @ [
        li r6 (Int64.of_int reps);
        label "u_loop";
        li r1 Abi.sys_vblk_read;
        li r2 (Int64.of_int sector);
        li r3 (Int64.of_int count);
        li r4 Abi.heap_base;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

let dirty_loop ~pages ~delay =
  build
    (prologue
    @ [
        li r5 (Int64.of_int pages);
        li r10 0L (* write counter: also the value stored *);
        label "u_outer";
        li r7 Abi.heap_base;
        li r8 0L;
        label "u_inner";
        addi r10 r10 1L;
        sd r10 r7 0L;
        (* inter-write delay: tunes the dirty rate *)
        li r9 (Int64.of_int delay);
        label "u_delay";
        beq r9 r0 "u_delay_done";
        addi r9 r9 (-1L);
        jmp "u_delay";
        label "u_delay_done";
        addi r7 r7 4096L;
        addi r8 r8 1L;
        blt r8 r5 "u_inner";
        jmp "u_outer";
      ])

let echo ~count =
  build
    (prologue
    @ [
        li r6 count;
        label "u_loop";
        (* poll the console until a byte arrives *)
        label "u_poll";
        li r1 Abi.sys_getchar;
        ecall;
        beq r1 r0 "u_poll";
        mv r2 r1;
        li r1 Abi.sys_putchar;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

let tick_watch ~ticks =
  build
    (prologue
    @ [
        li r6 ticks;
        label "u_loop";
        li r1 Abi.sys_tick_count;
        ecall;
        blt r1 r6 "u_loop";
      ]
    @ exit_)

(* Store [msg] into the heap with byte stores, then run [body]. *)
let with_heap_message msg body =
  let stores =
    List.concat
      (List.mapi
         (fun i c ->
           [ li r9 (Int64.of_int (Char.code c)); sb r9 r8 (Int64.of_int i) ])
         (List.init (String.length msg) (String.get msg)))
  in
  prologue @ [ li r8 Abi.heap_base ] @ stores @ body

let net_ping ~message =
  let len = Int64.of_int (String.length message) in
  build
    (with_heap_message message
       ([
          (* send the message *)
          li r1 Abi.sys_net_send;
          li r2 Abi.heap_base;
          li r3 len;
          ecall;
          (* wait for the echo *)
          label "u_wait";
          li r1 Abi.sys_net_recv;
          li r2 0x0020_1000L (* second heap page *);
          ecall;
          li r6 (-1L);
          beq r1 r6 "u_wait";
          (* print what came back *)
          mv r6 r1 (* length *);
          li r7 0x0020_1000L;
          label "u_print";
          beq r6 r0 "u_done";
          lb r2 r7 0L;
          li r1 Abi.sys_putchar;
          ecall;
          addi r7 r7 1L;
          addi r6 r6 (-1L);
          jmp "u_print";
          label "u_done";
        ]
       @ exit_))

let net_echo ~frames =
  build
    (prologue
    @ [
        li r6 (Int64.of_int frames);
        label "u_loop";
        label "u_wait";
        li r1 Abi.sys_net_recv;
        li r2 Abi.heap_base;
        ecall;
        li r7 (-1L);
        beq r1 r7 "u_wait";
        (* bounce it straight back *)
        mv r3 r1;
        li r1 Abi.sys_net_send;
        li r2 Abi.heap_base;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_loop";
      ]
    @ exit_)

(* Request/response pair for the application-level benchmark: the
   client sends a sector number, the server reads that sector from its
   block device and returns the first 8 bytes. *)
let net_client ~requests ~virtio_server:_ =
  build
    (prologue
    @ [
        li r6 0L (* request counter *);
        li r5 (Int64.of_int requests);
        label "u_req";
        (* request payload: the sector number *)
        li r8 Abi.heap_base;
        sd r6 r8 0L;
        li r1 Abi.sys_net_send;
        li r2 Abi.heap_base;
        li r3 8L;
        ecall;
        (* await the reply, yielding the CPU while the wire is quiet *)
        label "u_wait";
        li r1 Abi.sys_net_recv;
        li r2 0x0020_1000L;
        ecall;
        li r7 (-1L);
        bne r1 r7 "u_got";
        li r1 Abi.sys_yield;
        ecall;
        jmp "u_wait";
        label "u_got";
        addi r6 r6 1L;
        blt r6 r5 "u_req";
        (* signal completion on the console *)
        li r1 Abi.sys_putchar;
        li r2 68L (* 'D' *);
        ecall;
      ]
    @ exit_)

let net_server ~requests ~virtio =
  let read_call = if virtio then Abi.sys_vblk_read else Abi.sys_blk_read in
  build
    (prologue
    @ [
        li r6 (Int64.of_int requests);
        label "u_serve";
        (* wait for a request, yielding while idle *)
        label "u_wait";
        li r1 Abi.sys_net_recv;
        li r2 Abi.heap_base;
        ecall;
        li r7 (-1L);
        bne r1 r7 "u_got";
        li r1 Abi.sys_yield;
        ecall;
        jmp "u_wait";
        label "u_got";
        (* fetch the requested sector *)
        li r8 Abi.heap_base;
        ld r2 r8 0L (* sector *);
        li r1 read_call;
        li r3 1L;
        li r4 0x0020_1000L;
        ecall;
        (* reply with the first 8 bytes *)
        li r1 Abi.sys_net_send;
        li r2 0x0020_1000L;
        li r3 8L;
        ecall;
        addi r6 r6 (-1L);
        bne r6 r0 "u_serve";
      ]
    @ exit_)

(* ---------------- virtio-net fabric workloads ----------------

   Frame format on the switched fabric (48 bytes, all fields u64 LE):
     +0  dst mac      +8  src mac      +16 kind (0 announce, 1 request,
     +24 request id   +32 send stamp       2 reply)
     +40 client mac (carried end-to-end so the LB can route replies)

   Buffer discipline: [sys_vnet_tx] stages a descriptor pointing at the
   given buffer and the device only reads it at the next kick, so a
   staged buffer must stay untouched until the doorbell rings.  The
   client uses one buffer per frame of a batch; the forwarding guests
   rotate through {!Abi.vnet_ring_size} slots, which is exactly the
   number of descriptors that can be staged before the ring-full path
   forces a flush. *)

let frame_bytes = 48L
let broadcast = -1L

(* Announce this MAC to the switch with one broadcast so its learning
   table converges before any unicast flows. *)
let vnet_announce ~my_mac ~buf =
  [
    li r7 buf;
    li r9 broadcast;
    sd r9 r7 0L;
    li r9 my_mac;
    sd r9 r7 8L;
    sd r0 r7 16L;
    sd r0 r7 24L;
    sd r0 r7 32L;
    sd r9 r7 40L;
    mv r2 r7;
    li r3 frame_bytes;
    li r4 1L;
    li r1 Abi.sys_vnet_tx;
    ecall;
  ]

let vnet_client ~my_mac ~lb_mac ~peers ~requests ~batch ~gap =
  let batch = max 1 (min batch Abi.vnet_ring_size) in
  let batches = max 1 (requests / batch) in
  let rx_buf = Int64.add Abi.heap_base 0x800L in
  let announce_buf = Int64.add Abi.heap_base 0x840L in
  build
    (prologue
    @ vnet_announce ~my_mac ~buf:announce_buf
    @ [
        (* warm-up: wait for the peers' boot announces so the measured
           open loop starts against a running fabric, not against VMs
           that are still booting on a shared pcpu.  Patience is
           bounded: a lost announce (faulted link) delays nothing
           forever. *)
        li r5 (Int64.of_int peers);
        li r8 4000L (* patience, in poll iterations *);
        label "u_warm";
        beq r5 r0 "u_start";
        beq r8 r0 "u_start";
        addi r8 r8 (-1L);
        li r1 Abi.sys_vnet_rx;
        li r2 rx_buf;
        ecall;
        li r9 (-1L);
        beq r1 r9 "u_warm_idle";
        beq r1 r0 "u_warm" (* errored delivery *);
        li r7 rx_buf;
        ld r9 r7 16L;
        bne r9 r0 "u_warm" (* only announces count *);
        addi r5 r5 (-1L);
        jmp "u_warm";
        label "u_warm_idle";
        li r1 Abi.sys_yield;
        ecall;
        jmp "u_warm";
        label "u_start";
        li r5 (Int64.of_int batches);
        li r6 0L (* request id *);
        label "u_batch";
        li r8 0L (* frame within the batch *);
        label "u_frame";
        (* buffer j of this batch *)
        li r7 Abi.heap_base;
        slli r9 r8 6L;
        add r7 r7 r9;
        li r9 lb_mac;
        sd r9 r7 0L;
        li r9 my_mac;
        sd r9 r7 8L;
        li r9 1L;
        sd r9 r7 16L;
        sd r6 r7 24L;
        li r1 Abi.sys_gettime;
        ecall;
        sd r1 r7 32L (* send stamp *);
        li r9 my_mac;
        sd r9 r7 40L;
        label "u_stage";
        (* kick only on the last frame: the whole batch is one exit *)
        li r4 0L;
        addi r9 r8 1L;
        li r10 (Int64.of_int batch);
        bne r9 r10 "u_nokick";
        li r4 1L;
        label "u_nokick";
        mv r2 r7;
        li r3 frame_bytes;
        li r1 Abi.sys_vnet_tx;
        ecall;
        li r9 (-1L);
        bne r1 r9 "u_staged";
        (* ring full: flush the staged burst and retry this frame *)
        li r3 0L;
        li r4 1L;
        li r1 Abi.sys_vnet_tx;
        ecall;
        jmp "u_stage";
        label "u_staged";
        addi r6 r6 1L;
        addi r8 r8 1L;
        li r9 (Int64.of_int batch);
        blt r8 r9 "u_frame";
        (* opportunistically drain replies, then pace the open loop *)
        label "u_drain";
        li r1 Abi.sys_vnet_rx;
        li r2 rx_buf;
        ecall;
        li r9 (-1L);
        bne r1 r9 "u_drain";
        li r9 (Int64.of_int gap);
        label "u_gap";
        beq r9 r0 "u_gap_done";
        addi r9 r9 (-1L);
        jmp "u_gap";
        label "u_gap_done";
        addi r5 r5 (-1L);
        bne r5 r0 "u_batch";
        (* bounded final drain: keep polling while replies arrive,
           spend one of [r8] idle polls otherwise, then exit — never
           hangs when faults eat the tail of the reply stream *)
        li r8 64L;
        label "u_final";
        li r1 Abi.sys_vnet_rx;
        li r2 rx_buf;
        ecall;
        li r9 (-1L);
        bne r1 r9 "u_final";
        li r1 Abi.sys_yield;
        ecall;
        addi r8 r8 (-1L);
        bne r8 r0 "u_final";
      ]
    @ exit_)

(* Shared forwarding tail: stage the frame in r7 without a kick; on a
   full ring flush the burst first.  r8 counts descriptors staged since
   the last doorbell. *)
let vnet_forward_and_loop =
  [
    label "u_fstage";
    mv r2 r7;
    li r3 frame_bytes;
    li r4 0L;
    li r1 Abi.sys_vnet_tx;
    ecall;
    li r9 (-1L);
    bne r1 r9 "u_fok";
    li r3 0L;
    li r4 1L;
    li r1 Abi.sys_vnet_tx;
    ecall;
    li r8 0L;
    jmp "u_fstage";
    label "u_fok";
    addi r8 r8 1L;
    addi r5 r5 1L;
    jmp "u_loop";
    (* idle: one doorbell for everything staged since the last one,
       then let other vcpus run *)
    label "u_idle";
    beq r8 r0 "u_sleep";
    li r3 0L;
    li r4 1L;
    li r1 Abi.sys_vnet_tx;
    ecall;
    li r8 0L;
    label "u_sleep";
    li r1 Abi.sys_yield;
    ecall;
    jmp "u_loop";
  ]

let vnet_lb ~my_mac ~backends =
  let n = List.length backends in
  if n = 0 then invalid_arg "vnet_lb: no backends";
  let pick =
    List.concat
      (List.mapi
         (fun i mac ->
           let skip = Printf.sprintf "u_rr%d" i in
           if i = n - 1 then [ li r10 mac ]
           else
             [
               li r10 (Int64.of_int i);
               bne r9 r10 skip;
               li r10 mac;
               jmp "u_pick";
               label skip;
             ])
         backends)
  in
  build
    (prologue
    @ vnet_announce ~my_mac ~buf:(Int64.add Abi.heap_base 0x840L)
    @ [
        li r5 0L (* frames forwarded: rotates the staging buffers *);
        li r8 0L (* staged since last kick *);
        li r11 0L (* round-robin cursor *);
        label "u_loop";
        andi r9 r5 (Int64.of_int (Abi.vnet_ring_size - 1));
        slli r9 r9 6L;
        li r7 Abi.heap_base;
        add r7 r7 r9;
        li r1 Abi.sys_vnet_rx;
        mv r2 r7;
        ecall;
        li r9 (-1L);
        beq r1 r9 "u_idle";
        beq r1 r0 "u_loop" (* errored delivery: already consumed *);
        ld r9 r7 16L;
        li r10 1L;
        beq r9 r10 "u_req";
        li r10 2L;
        beq r9 r10 "u_rep";
        jmp "u_loop" (* announces and junk are dropped here *);
        label "u_rep";
        (* reply: route back to the client carried in the frame *)
        ld r9 r7 40L;
        sd r9 r7 0L;
        li r9 my_mac;
        sd r9 r7 8L;
        jmp "u_fstage";
        label "u_req";
        (* request: fan out to the next backend in line *)
        li r12 (Int64.of_int n);
        rem r9 r11 r12;
      ]
    @ pick
    @ [
        label "u_pick";
        sd r10 r7 0L;
        li r10 my_mac;
        sd r10 r7 8L;
        addi r11 r11 1L;
        jmp "u_fstage";
      ]
    @ vnet_forward_and_loop)

let vnet_backend ~my_mac ~service =
  build
    (prologue
    @ vnet_announce ~my_mac ~buf:(Int64.add Abi.heap_base 0x840L)
    @ [
        li r5 0L;
        li r8 0L;
        label "u_loop";
        andi r9 r5 (Int64.of_int (Abi.vnet_ring_size - 1));
        slli r9 r9 6L;
        li r7 Abi.heap_base;
        add r7 r7 r9;
        li r1 Abi.sys_vnet_rx;
        mv r2 r7;
        ecall;
        li r9 (-1L);
        beq r1 r9 "u_idle";
        beq r1 r0 "u_loop";
        ld r9 r7 16L;
        li r10 1L;
        bne r9 r10 "u_loop" (* only requests are served *);
        (* burn the configured service time *)
        li r9 (Int64.of_int service);
        label "u_svc";
        beq r9 r0 "u_svc_done";
        addi r9 r9 (-1L);
        jmp "u_svc";
        label "u_svc_done";
        (* turn the request into a reply addressed to its sender *)
        ld r9 r7 8L;
        sd r9 r7 0L;
        li r9 my_mac;
        sd r9 r7 8L;
        li r9 2L;
        sd r9 r7 16L;
        jmp "u_fstage";
      ]
    @ vnet_forward_and_loop)

(* Each hart stamps (hartid + 1) * 0x101 into its own heap slot — the
   SMP smoke test reads the slots from the host side. *)
let smp_probe =
  build
    (prologue
    @ [
        li r7 Abi.heap_base;
        slli r8 r10 3L;
        add r7 r7 r8;
        addi r9 r10 1L;
        li r6 0x101L;
        mul r9 r9 r6;
        sd r9 r7 0L;
      ]
    @ exit_)

let hello ?(message = "hello from velum guest\n") () =
  let putc c =
    [
      li r1 Abi.sys_putchar;
      li r2 (Int64.of_int (Char.code c));
      ecall;
    ]
  in
  build (prologue @ List.concat_map putc (List.init (String.length message) (String.get message)) @ exit_)
