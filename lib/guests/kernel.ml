open Velum_isa
open Asm

type config = {
  pv_console : bool;
  pv_pt : bool;
  hcall_ok : bool;
  user_pages : int;
  heap_pages : int;
  heap_superpages : bool;
  timer_interval : int64;
  vnet : bool;
}

let default =
  {
    pv_console = false;
    pv_pt = false;
    hcall_ok = false;
    user_pages = 16;
    heap_pages = 0;
    heap_superpages = false;
    timer_interval = 0L;
    vnet = false;
  }

let for_user ?(config = default) (img : Asm.image) =
  let pages = (Bytes.length img.Asm.code + Arch.page_size - 1) / Arch.page_size in
  { config with user_pages = max 1 pages }

(* PTE permission bit masks (without the valid bit, which k_map_page
   adds). *)
let perm_s_rwx = 0b0_1110L (* r w x *)
let perm_s_rw = 0b0_0110L
let perm_u_rwx = 0b1_1110L
let perm_u_rw = 0b1_0110L

let mmio_pages = 4 (* 5 with the virtio-net device mapped *)
let nic_base = 0x4000_1000L
let blk_base = 0x4000_2000L
let vblk_base = 0x4000_3000L
let vnet_base = 0x4000_4000L
let vblk_ring_size = 64L
let vblk_status_area = Int64.add Abi.ring_page 0xE00L
let vnet_ring_size = Int64.of_int Abi.vnet_ring_size
let vnet_buf_bytes = Int64.of_int Abi.vnet_buf_bytes

(* sie control bits (see Cpu): 63 = GIE, 62 = SPIE, 0 = timer enable,
   1 = external enable.  The external line stays masked: every driver in
   this kernel polls, and the UART/NIC "receive ready" lines are
   level-triggered, so unmasking them without consuming the data would
   storm. *)
let sie_user_value ~timer =
  let v = Int64.shift_left 1L 62 (* SPIE: user runs with interrupts on *) in
  if timer then Int64.logor v 0b1L else v

(* Map the identity range [start, end) with [perms]; [tag] uniquifies the
   loop labels. *)
let bootmap ~tag ~start ~end_ ~perms =
  [
    li r12 start;
    li r13 end_;
    label ("k_bm_" ^ tag);
    bge r12 r13 ("k_bm_done_" ^ tag);
    mv r2 r12;
    mv r3 r12;
    li r4 perms;
    call "k_map_page";
    addi r12 r12 4096L;
    jmp ("k_bm_" ^ tag);
    label ("k_bm_done_" ^ tag);
  ]

(* Per-hart trap state, addressed through r13 — the kernel thread
   pointer, set up at boot and owned by the kernel thereafter (user code
   must treat r13 as reserved).  Layout per hart (stride 136 bytes):
   slot 0 = kernel stack top, slots 1..15 = saved r1..r15 (slot 13
   unused: r13 is never clobbered by the handler). *)
let max_harts = 8
let save_stride = 136

let saveable = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 14; 15 ]

let save_all_regs = List.map (fun i -> sd i r13 (Int64.of_int (8 * i))) saveable

let restore_and_sret =
  [ label "k_restore" ]
  @ List.map (fun i -> ld i r13 (Int64.of_int (8 * i))) (List.rev saveable)
  @ [ sret ]

(* Per-syscall dispatch: compare r1 against each number. *)
let dispatch_entry (number, target) = [ li r6 number; beq r1 r6 target ]

let build (cfg : config) =
  let user_end =
    Int64.add Abi.user_base (Int64.of_int (max 1 cfg.user_pages * Arch.page_size))
  in
  let ustack_end =
    Int64.add Abi.user_stack_base (Int64.of_int (Abi.user_stack_pages * Arch.page_size))
  in
  let heap_end =
    Int64.add Abi.heap_base (Int64.of_int (cfg.heap_pages * Arch.page_size))
  in
  let mmio_end =
    Int64.add Velum_machine.Bus.mmio_base
      (Int64.of_int ((if cfg.vnet then mmio_pages + 1 else mmio_pages) * Arch.page_size))
  in
  let vnet_end =
    Int64.add Abi.vnet_page (Int64.of_int (Abi.vnet_pages * Arch.page_size))
  in
  let satp_value = Arch.satp_make ~root_ppn:(Int64.shift_right_logical Abi.pt_arena_base 12) in

  let boot =
    [
      label "k_entry";
      li r14 Abi.kernel_stack_top;
      la r2 "k_trap";
      csrw Arch.Stvec r2;
      (* secondaries skip table construction and wait for hart 0 *)
      csrr r6 Arch.Hartid;
      bne r6 r0 "k_secondary";
    ]
    @ bootmap ~tag:"kern" ~start:0L ~end_:Abi.kernel_region_end ~perms:perm_s_rwx
    @ bootmap ~tag:"mmio" ~start:Velum_machine.Bus.mmio_base ~end_:mmio_end
        ~perms:perm_s_rw
    @ bootmap ~tag:"user" ~start:Abi.user_base ~end_:user_end ~perms:perm_u_rwx
    @ bootmap ~tag:"ustk" ~start:Abi.user_stack_base ~end_:ustack_end ~perms:perm_u_rw
    @ (if cfg.vnet then
         bootmap ~tag:"vnet" ~start:Abi.vnet_page ~end_:vnet_end ~perms:perm_s_rw
       else [])
    @ (if cfg.heap_pages > 0 then
         if cfg.heap_superpages then
           (* cover the heap with 2 MiB mappings (the base is 2 MiB
              aligned; the tail rounds up) *)
           let two_mb = Int64.of_int (Arch.page_size lsl Arch.vpn_bits) in
           let end_2m =
             Int64.mul (Int64.div (Int64.add heap_end (Int64.sub two_mb 1L)) two_mb) two_mb
           in
           [
             li r12 Abi.heap_base;
             li r13 end_2m;
             label "k_bm_heap2m";
             bge r12 r13 "k_bm_done_heap2m";
             mv r2 r12;
             mv r3 r12;
             li r4 perm_u_rw;
             call "k_map_page_2m";
             li r7 two_mb;
             add r12 r12 r7;
             jmp "k_bm_heap2m";
             label "k_bm_done_heap2m";
           ]
         else bootmap ~tag:"heap" ~start:Abi.heap_base ~end_:heap_end ~perms:perm_u_rw
       else [])
    @ [
        li r2 1L;
        sdl r2 "k_paging_on";
        sdl r2 "k_smp_go" (* release the secondaries *);
        jmp "k_hart_common";
        label "k_secondary";
        ldl r2 "k_smp_go";
        beq r2 r0 "k_secondary";
        label "k_hart_common";
        (* per-hart kernel thread pointer and kernel stack *)
        csrr r6 Arch.Hartid;
        li r7 (Int64.of_int save_stride);
        mul r7 r7 r6;
        la r5 "k_save_harts";
        add r13 r5 r7;
        li r7 0x2000L;
        mul r7 r7 r6;
        li r5 Abi.kernel_stack_top;
        sub r5 r5 r7;
        sd r5 r13 0L (* this hart's kernel stack top *);
        mv r14 r5;
        (* Enable paging (hart 0 built the shared tables). *)
        li r2 satp_value;
        csrw Arch.Satp r2;
      ]
    @ (if cfg.timer_interval > 0L then
         [
           csrr r2 Arch.Time;
           li r3 cfg.timer_interval;
           add r2 r2 r3;
           csrw Arch.Stimecmp r2;
         ]
       else [])
    @ [
        (* Drop to the user program; r10 carries the hart id so user
           code can carve per-hart stacks and data. *)
        csrr r10 Arch.Hartid;
        li r2 Abi.user_base;
        csrw Arch.Sepc r2;
        li r2 (sie_user_value ~timer:(cfg.timer_interval > 0L));
        csrw Arch.Sie r2;
        sret;
      ]
  in

  let trap_entry =
    [ label "k_trap" ]
    @ save_all_regs
    @ [
        csrr r1 Arch.Scause;
        srli r2 r1 63L;
        bne r2 r0 "k_irq";
        bne r1 r0 "k_panic";
        (* --- system call --- *)
        ld r14 r13 0L (* this hart's kernel stack *);
        ld r1 r13 8L;
        ld r2 r13 16L;
        ld r3 r13 24L;
        ld r4 r13 32L;
        ld r5 r13 40L;
      ]
    @ List.concat_map dispatch_entry
        [
          (Abi.sys_exit, "k_sys_exit");
          (Abi.sys_putchar, "k_sys_putchar");
          (Abi.sys_gettime, "k_sys_gettime");
          (Abi.sys_yield, "k_sys_yield");
          (Abi.sys_nop, "k_sys_nop");
          (Abi.sys_map, "k_sys_map");
          (Abi.sys_unmap, "k_sys_unmap");
          (Abi.sys_blk_read, "k_sys_blk_read");
          (Abi.sys_vblk_read, "k_sys_vblk_read");
          (Abi.sys_tick_count, "k_sys_ticks");
          (Abi.sys_getchar, "k_sys_getchar");
          (Abi.sys_net_send, "k_sys_net_send");
          (Abi.sys_net_recv, "k_sys_net_recv");
        ]
    @ (if cfg.vnet then
         List.concat_map dispatch_entry
           [
             (Abi.sys_vnet_tx, "k_sys_vnet_tx"); (Abi.sys_vnet_rx, "k_sys_vnet_rx");
           ]
       else [])
    @ [ li r1 (-1L); jmp "k_sys_done" ]
  in

  let sys_done =
    [
      label "k_sys_done";
      sd r1 r13 8L;
      csrr r2 Arch.Sepc;
      addi r2 r2 8L;
      csrw Arch.Sepc r2;
      jmp "k_restore";
    ]
  in

  let syscalls =
    [ label "k_sys_exit"; halt ]
    @ [ label "k_sys_putchar" ]
    @ (if cfg.pv_console && cfg.hcall_ok then
         [ li r1 Velum_vmm.Hypercall.hc_console_putc; hcall ]
       else [ outp Velum_devices.Uart.data_port r2 ])
    @ [ li r1 0L; jmp "k_sys_done" ]
    @ [ label "k_sys_gettime"; csrr r1 Arch.Time; jmp "k_sys_done" ]
    @ [ label "k_sys_yield" ]
    @ (if cfg.hcall_ok then [ li r1 Velum_vmm.Hypercall.hc_yield; hcall ] else [])
    @ [ li r1 0L; jmp "k_sys_done" ]
    @ [ label "k_sys_nop"; li r1 0L; jmp "k_sys_done" ]
    @ [
        (* map r3 pages starting at va r2, all onto the scratch frame;
           one sfence for the whole batch *)
        label "k_sys_map";
        mv r12 r3;
        label "k_map_loop";
        beq r12 r0 "k_map_done";
        li r3 Abi.scratch_page;
        li r4 perm_u_rw;
        call "k_map_page";
        addi r2 r2 4096L;
        addi r12 r12 (-1L);
        jmp "k_map_loop";
        label "k_map_done";
        sfence;
        li r1 0L;
        jmp "k_sys_done";
      ]
    @ [
        label "k_sys_unmap";
        mv r12 r3;
        label "k_unmap_loop";
        beq r12 r0 "k_unmap_done";
        call "k_unmap_page";
        addi r2 r2 4096L;
        addi r12 r12 (-1L);
        jmp "k_unmap_loop";
        label "k_unmap_done";
        sfence;
        li r1 0L;
        jmp "k_sys_done";
      ]
    @ [ label "k_sys_ticks"; ldl r1 "k_ticks"; jmp "k_sys_done" ]
    @ [ label "k_sys_getchar"; inp r1 Velum_devices.Uart.data_port; jmp "k_sys_done" ]
    @ [
        (* transmit a frame: r2 = buffer (identity va = gpa), r3 = len *)
        label "k_sys_net_send";
        li r5 nic_base;
        sd r2 r5 0x00L (* tx addr *);
        sd r3 r5 0x08L (* tx len *);
        li r6 1L;
        sd r6 r5 0x10L (* tx doorbell *);
        li r1 0L;
        jmp "k_sys_done";
      ]
    @ [
        (* receive: r2 = buffer; returns length or -1 when idle *)
        label "k_sys_net_recv";
        li r5 nic_base;
        ld r6 r5 0x18L (* rx len *);
        beq r6 r0 "k_net_empty";
        sd r2 r5 0x20L (* rx dma *);
        li r7 1L;
        sd r7 r5 0x28L (* rx doorbell *);
        mv r1 r6;
        jmp "k_sys_done";
        label "k_net_empty";
        li r1 (-1L);
        jmp "k_sys_done";
      ]
  in

  (* Emulated block read: program the registers (five device touches),
     then poll STATUS until the operation completes.  A transient device
     error (STATUS=3) re-issues the whole command up to three times
     before reporting -1 to the caller. *)
  let sys_blk_read =
    [
      label "k_sys_blk_read";
      li r5 blk_base;
      li r9 3L (* bounded attempts *);
      label "k_blk_issue";
      sd r2 r5 0x08L (* sector *);
      sd r3 r5 0x10L (* count *);
      sd r4 r5 0x18L (* dma address *);
      li r6 1L;
      sd r6 r5 0x00L (* command: read *);
      label "k_blk_wait";
      (* backoff so polling does not dominate the device latency *)
      li r12 1000L;
      label "k_blk_backoff";
      addi r12 r12 (-1L);
      bne r12 r0 "k_blk_backoff";
      ld r6 r5 0x20L (* status; reading also clears done/error *);
      li r7 2L;
      beq r6 r7 "k_blk_done";
      li r7 3L;
      beq r6 r7 "k_blk_err";
      jmp "k_blk_wait";
      label "k_blk_done";
      li r1 0L;
      jmp "k_sys_done";
      label "k_blk_err";
      addi r9 r9 (-1L);
      bne r9 r0 "k_blk_issue" (* retry *);
      li r1 (-1L);
      jmp "k_sys_done";
    ]
  in

  (* Paravirtual block read: [r3] one-sector requests published to the
     ring, a single kick, then wait for the used index to catch up. *)
  let sys_vblk_read =
    [
      label "k_sys_vblk_read";
      li r5 vblk_base;
      (* one-time ring registration *)
      ldl r6 "k_vblk_init";
      bne r6 r0 "k_vb_inited";
      li r6 Abi.ring_page;
      sd r6 r5 0x10L;
      li r6 vblk_ring_size;
      sd r6 r5 0x18L;
      li r6 1L;
      sdl r6 "k_vblk_init";
      label "k_vb_inited";
      (* r15 (the link register — no calls from here, k_restore reloads
         it) counts bounded retry attempts for the whole batch *)
      li r15 3L;
      label "k_vb_retry";
      li r8 Abi.ring_page;
      ld r9 r8 0L (* avail *);
      ld r10 r8 8L (* used *);
      add r11 r10 r3 (* target used = used + count *);
      li r7 0L (* i *);
      label "k_vb_push";
      bge r7 r3 "k_vb_kick";
      (* slot address = ring + 16 + (avail % size) * 40 *)
      li r12 vblk_ring_size;
      rem r12 r9 r12;
      li r6 40L;
      mul r12 r12 r6;
      add r12 r12 r8;
      addi r12 r12 16L;
      (* data buffer = r4 + i*512 *)
      li r6 512L;
      mul r6 r6 r7;
      add r6 r6 r4;
      sd r6 r12 0L;
      li r6 512L;
      sd r6 r12 8L (* len *);
      li r6 1L;
      sd r6 r12 16L (* kind: read *);
      add r6 r2 r7;
      sd r6 r12 24L (* sector *);
      (* status byte address = status area + i*8 *)
      li r6 8L;
      mul r6 r6 r7;
      li r1 vblk_status_area;
      add r6 r6 r1;
      sd r0 r6 0L (* clear the status word before the device reuses it *);
      sd r6 r12 32L;
      addi r9 r9 1L;
      sd r9 r8 0L (* publish avail *);
      addi r7 r7 1L;
      jmp "k_vb_push";
      label "k_vb_kick";
      sd r0 r5 0x00L (* the one exit for the whole batch *);
      label "k_vb_wait";
      li r12 1000L;
      label "k_vb_backoff";
      addi r12 r12 (-1L);
      bne r12 r0 "k_vb_backoff";
      ld r6 r5 0x08L (* ISR read: acks and lets the device model tick *);
      ld r10 r8 8L (* used *);
      blt r10 r11 "k_vb_wait";
      (* completion: scan the per-descriptor status bytes; any nonzero
         one fails the batch, which is re-pushed up to three times *)
      li r7 0L;
      label "k_vb_check";
      bge r7 r3 "k_vb_ok";
      li r6 8L;
      mul r6 r6 r7;
      li r1 vblk_status_area;
      add r6 r6 r1;
      ld r6 r6 0L;
      bne r6 r0 "k_vb_fail";
      addi r7 r7 1L;
      jmp "k_vb_check";
      label "k_vb_fail";
      addi r15 r15 (-1L);
      bne r15 r0 "k_vb_retry";
      li r1 (-1L);
      jmp "k_sys_done";
      label "k_vb_ok";
      li r1 0L;
      jmp "k_sys_done";
    ]
  in

  (* Virtio-net driver.  TX: stage descriptors with plain stores and
     ring the doorbell only when the caller asks (r4 bit 0), so a burst
     of frames costs one VM exit.  RX: the device polls the avail index
     and delivers on its own tick; the kernel consumes by comparing the
     used index against its own [k_vnet_seen] cursor and reposts buffers
     with plain stores — no exit anywhere on the receive path. *)
  let sys_vnet =
    if not cfg.vnet then []
    else
      [
        (* one-time setup: zero both ring headers, program the device,
           post every receive buffer.  Clobbers r5-r12, preserves
           r2-r4. *)
        label "k_vnet_ensure";
        ldl r6 "k_vnet_init";
        bne r6 r0 "k_vne_done";
        li r8 Abi.vnet_tx_ring;
        sd r0 r8 0L;
        sd r0 r8 8L;
        li r8 Abi.vnet_rx_ring;
        sd r0 r8 0L;
        sd r0 r8 8L;
        li r5 vnet_base;
        li r6 Abi.vnet_tx_ring;
        sd r6 r5 0x10L;
        li r6 vnet_ring_size;
        sd r6 r5 0x18L;
        li r6 Abi.vnet_rx_ring;
        sd r6 r5 0x20L;
        li r6 vnet_ring_size;
        sd r6 r5 0x28L;
        li r7 0L;
        label "k_vne_post";
        li r6 vnet_ring_size;
        bge r7 r6 "k_vne_posted";
        (* slot = rx ring + 16 + i*40 (avail starts at 0) *)
        li r6 40L;
        mul r9 r7 r6;
        add r9 r9 r8;
        addi r9 r9 16L;
        li r6 vnet_buf_bytes;
        mul r10 r7 r6;
        li r6 Abi.vnet_rx_bufs;
        add r10 r10 r6;
        sd r10 r9 0L (* buffer gpa *);
        li r6 vnet_buf_bytes;
        sd r6 r9 8L (* buffer length *);
        sd r0 r9 16L;
        sd r0 r9 24L;
        li r6 8L;
        mul r10 r7 r6;
        li r6 Abi.vnet_rx_status;
        add r10 r10 r6;
        sd r0 r10 0L (* clear the status word *);
        sd r10 r9 32L (* status gpa *);
        addi r7 r7 1L;
        jmp "k_vne_post";
        label "k_vne_posted";
        li r6 vnet_ring_size;
        sd r6 r8 0L (* publish avail = every buffer posted *);
        li r6 1L;
        sdl r6 "k_vnet_init";
        label "k_vne_done";
        ret;
        (* transmit: r2 = frame va (identity = gpa), r3 = length
           (0 = stage nothing), r4 bit 0 = kick.  -1 when the ring is
           full. *)
        label "k_sys_vnet_tx";
        call "k_vnet_ensure";
        beq r3 r0 "k_vt_kick" (* pure flush *);
        li r8 Abi.vnet_tx_ring;
        ld r9 r8 0L (* avail *);
        ld r10 r8 8L (* used *);
        sub r11 r9 r10;
        li r6 vnet_ring_size;
        bge r11 r6 "k_vt_full";
        (* slot = tx ring + 16 + (avail % size)*40 *)
        li r6 vnet_ring_size;
        rem r12 r9 r6;
        li r6 40L;
        mul r12 r12 r6;
        add r12 r12 r8;
        addi r12 r12 16L;
        sd r2 r12 0L (* frame gpa *);
        sd r3 r12 8L (* length *);
        sd r0 r12 16L;
        sd r0 r12 24L;
        li r6 vnet_ring_size;
        rem r11 r9 r6;
        li r6 8L;
        mul r11 r11 r6;
        li r6 Abi.vnet_tx_status;
        add r11 r11 r6;
        sd r0 r11 0L (* clear the status word *);
        sd r11 r12 32L;
        addi r9 r9 1L;
        sd r9 r8 0L (* publish avail: a plain store, no exit *);
        label "k_vt_kick";
        andi r6 r4 1L;
        beq r6 r0 "k_vt_ok";
        li r5 vnet_base;
        sd r0 r5 0x00L (* the one doorbell exit for the whole burst *);
        label "k_vt_ok";
        li r1 0L;
        jmp "k_sys_done";
        label "k_vt_full";
        li r1 (-1L);
        jmp "k_sys_done";
        (* receive: r2 = destination buffer.  Returns the length, 0 for
           an errored delivery, -1 when nothing is pending. *)
        label "k_sys_vnet_rx";
        call "k_vnet_ensure";
        li r8 Abi.vnet_rx_ring;
        ld r10 r8 8L (* used *);
        ldl r9 "k_vnet_seen";
        blt r9 r10 "k_vr_have";
        li r1 (-1L);
        jmp "k_sys_done";
        label "k_vr_have";
        li r6 vnet_ring_size;
        rem r11 r9 r6 (* buffer index *);
        li r6 8L;
        mul r7 r11 r6;
        li r6 Abi.vnet_rx_status;
        add r7 r7 r6;
        ld r12 r7 0L (* status word: (len << 8), or 1 on error *);
        srli r5 r12 8L (* frame length; an error leaves 0 *);
        li r6 vnet_buf_bytes;
        mul r10 r11 r6;
        li r6 Abi.vnet_rx_bufs;
        add r10 r10 r6 (* source buffer *);
        mv r4 r5 (* bytes remaining *);
        mv r12 r2 (* destination cursor *);
        label "k_vr_copy";
        bge r0 r4 "k_vr_copied";
        ld r6 r10 0L;
        sd r6 r12 0L;
        addi r10 r10 8L;
        addi r12 r12 8L;
        addi r4 r4 (-8L);
        jmp "k_vr_copy";
        label "k_vr_copied";
        (* repost buffer [r11] at the new avail slot — plain stores *)
        sd r0 r7 0L (* clear the status word for reuse *);
        ld r9 r8 0L (* avail *);
        li r6 vnet_ring_size;
        rem r4 r9 r6;
        li r6 40L;
        mul r4 r4 r6;
        add r4 r4 r8;
        addi r4 r4 16L;
        li r6 vnet_buf_bytes;
        mul r10 r11 r6;
        li r6 Abi.vnet_rx_bufs;
        add r10 r10 r6;
        sd r10 r4 0L;
        li r6 vnet_buf_bytes;
        sd r6 r4 8L;
        sd r0 r4 16L;
        sd r0 r4 24L;
        sd r7 r4 32L;
        addi r9 r9 1L;
        sd r9 r8 0L (* publish avail: no doorbell needed *);
        ldl r9 "k_vnet_seen";
        addi r9 r9 1L;
        sdl r9 "k_vnet_seen";
        mv r1 r5;
        jmp "k_sys_done";
      ]
  in

  let irq_handlers =
    [
      label "k_irq";
      andi r2 r1 1L;
      bne r2 r0 "k_irq_ext";
      (* timer: count the tick and re-arm *)
      ldl r2 "k_ticks";
      addi r2 r2 1L;
      sdl r2 "k_ticks";
      csrr r2 Arch.Time;
      li r3 (if cfg.timer_interval > 0L then cfg.timer_interval else 1_000_000L);
      add r2 r2 r3;
      csrw Arch.Stimecmp r2;
      jmp "k_restore";
      label "k_irq_ext";
      (* acknowledge both block devices *)
      li r3 (Int64.add blk_base 0x20L);
      ld r2 r3 0L;
      li r3 (Int64.add vblk_base 0x08L);
      ld r2 r3 0L;
      jmp "k_restore";
    ]
  in

  let panic =
    [
      label "k_panic";
      li r2 (Int64.of_int (Char.code '!'));
      outp Velum_devices.Uart.data_port r2;
      halt;
    ]
  in

  (* map_page{,_2m}(va=r2, pa=r3, perms=r4): walk/build the identity
     tables, installing the leaf at level [stop] (0 = 4 KiB, 1 = 2 MiB).
     Clobbers r5-r11; preserves the arguments. *)
  let map_page_routine ~suffix ~stop =
    let l tag = Printf.sprintf "k_mp%s_%s" suffix tag in
    [
      label ("k_map_page" ^ suffix);
      addi r14 r14 (-8L);
      sd r15 r14 0L;
      ldl r5 "k_pt_root_v";
      li r6 2L;
      label (l "level");
      li r7 9L;
      mul r7 r7 r6;
      addi r7 r7 12L;
      srl r8 r2 r7;
      andi r8 r8 0x1FFL;
      slli r8 r8 3L;
      add r8 r8 r5;
      li r7 (Int64.of_int stop);
      beq r6 r7 (l "leaf");
      ld r9 r8 0L;
      andi r10 r9 1L;
      bne r10 r0 (l "child");
      (* allocate a fresh (zeroed) table page from the bump arena *)
      ldl r10 "k_pt_bump";
      mv r11 r10;
      addi r10 r10 4096L;
      sdl r10 "k_pt_bump";
      srli r9 r11 12L;
      slli r9 r9 10L;
      ori r9 r9 1L;
      call "k_pt_store";
      mv r5 r11;
      jmp (l "next");
      label (l "child");
      srli r5 r9 10L;
      slli r5 r5 12L;
      label (l "next");
      addi r6 r6 (-1L);
      jmp (l "level");
      label (l "leaf");
      srli r9 r3 12L;
      slli r9 r9 10L;
      or_ r9 r9 r4;
      ori r9 r9 1L;
      call "k_pt_store";
      ld r15 r14 0L;
      addi r14 r14 8L;
      ret;
    ]
  in
  let map_page = map_page_routine ~suffix:"" ~stop:0 in
  let map_page_2m = map_page_routine ~suffix:"_2m" ~stop:1 in

  let unmap_page =
    [
      label "k_unmap_page";
      addi r14 r14 (-8L);
      sd r15 r14 0L;
      ldl r5 "k_pt_root_v";
      li r6 2L;
      label "k_up_level";
      li r7 9L;
      mul r7 r7 r6;
      addi r7 r7 12L;
      srl r8 r2 r7;
      andi r8 r8 0x1FFL;
      slli r8 r8 3L;
      add r8 r8 r5;
      beq r6 r0 "k_up_leaf";
      ld r9 r8 0L;
      andi r10 r9 1L;
      beq r10 r0 "k_up_done";
      srli r5 r9 10L;
      slli r5 r5 12L;
      addi r6 r6 (-1L);
      jmp "k_up_level";
      label "k_up_leaf";
      li r9 0L;
      call "k_pt_store";
      label "k_up_done";
      ld r15 r14 0L;
      addi r14 r14 8L;
      ret;
    ]
  in

  (* pt_store(addr=r8, value=r9): direct store, or a pt-update hypercall
     once paging is live in a paravirtualized guest. *)
  let pt_store =
    [ label "k_pt_store" ]
    @ (if cfg.pv_pt && cfg.hcall_ok then
         [
           ldl r10 "k_paging_on";
           beq r10 r0 "k_ps_direct";
           addi r14 r14 (-24L);
           sd r1 r14 0L;
           sd r2 r14 8L;
           sd r3 r14 16L;
           li r1 Velum_vmm.Hypercall.hc_pt_update;
           mv r2 r8;
           mv r3 r9;
           hcall;
           ld r1 r14 0L;
           ld r2 r14 8L;
           ld r3 r14 16L;
           addi r14 r14 24L;
           ret;
         ]
       else [])
    @ [ label "k_ps_direct"; sd r9 r8 0L; ret ]
  in

  let data =
    [
      Align 8;
      label "k_pt_root_v";
      Dword Abi.pt_arena_base;
      label "k_pt_bump";
      Dword (Int64.add Abi.pt_arena_base 4096L);
      label "k_paging_on";
      Dword 0L;
      label "k_ticks";
      Dword 0L;
      label "k_vblk_init";
      Dword 0L;
      label "k_vnet_init";
      Dword 0L;
      label "k_vnet_seen";
      Dword 0L;
    ]
    @ [ label "k_smp_go"; Dword 0L; label "k_save_harts";
        Space (save_stride * max_harts) ]
  in

  let items =
    boot @ trap_entry @ sys_done @ syscalls @ sys_blk_read @ sys_vblk_read
    @ sys_vnet @ irq_handlers @ panic @ map_page @ map_page_2m @ unmap_page
    @ pt_store @ restore_and_sret @ data
  in
  Asm.assemble ~origin:Abi.kernel_base items
