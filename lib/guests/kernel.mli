(** The guest operating system: a tiny supervisor-mode kernel written in
    VR64 assembly (via the {!Velum_isa.Asm} DSL).

    At boot it builds identity page tables for the layout in {!Abi},
    installs a trap handler, enables paging, optionally arms the periodic
    timer, and drops to the user program at {!Abi.user_base}.  The trap
    handler dispatches system calls (console, timing, page-table
    manipulation, block I/O on both the emulated and the paravirtual
    device), services timer ticks, and acknowledges device interrupts.

    The same image boots on bare metal ({!Velum_devices.Platform}) and
    under the hypervisor; the paravirtual configuration flags switch the
    console, scheduler-yield and page-table paths to hypercalls. *)

type config = {
  pv_console : bool;  (** console output via hypercall *)
  pv_pt : bool;  (** runtime page-table updates via hypercall *)
  hcall_ok : bool;  (** hypercalls permitted at all (false on bare
                        metal, where [hcall] is illegal) *)
  user_pages : int;  (** pages to map user-executable at
                         {!Abi.user_base} *)
  heap_pages : int;  (** pages to map user-writable at
                         {!Abi.heap_base} *)
  heap_superpages : bool;
      (** map the heap with 2 MiB superpage leaves instead of 4 KiB
          pages (rounded up to cover [heap_pages]) *)
  timer_interval : int64;  (** periodic timer in cycles; 0 disables *)
  vnet : bool;
      (** build the virtio-net driver: maps the {!Abi.vnet_page} area
          and a fifth MMIO page, and dispatches [sys_vnet_tx]/
          [sys_vnet_rx] *)
}

val default : config
(** No paravirtualization, 16 user pages, no heap, no timer. *)

val for_user : ?config:config -> Velum_isa.Asm.image -> config
(** [for_user ~config img] adjusts [user_pages] to cover the given user
    image. *)

val build : config -> Velum_isa.Asm.image
(** Assemble the kernel at {!Abi.kernel_base}; the boot entry point is
    the image origin. *)
