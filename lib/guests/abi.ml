let kernel_base = 0x1000L
let kernel_stack_top = 0x0008_0000L
let kernel_region_end = 0x0010_0000L
let pt_arena_base = 0x0008_0000L
let ring_page = 0x000F_0000L
let user_base = 0x0010_0000L
let user_stack_base = 0x0014_0000L
let user_stack_pages = 4
let scratch_page = 0x0015_0000L

(* Virtio-net driver area (two pages, kernel-only, identity-mapped when
   the kernel is built with [vnet = true]): both descriptor rings, their
   status-word arrays, and the receive buffer pool. *)
let vnet_page = 0x0016_0000L
let vnet_pages = 2
let vnet_tx_ring = 0x0016_0000L
let vnet_rx_ring = 0x0016_0800L
let vnet_tx_status = 0x0016_0E00L
let vnet_rx_status = 0x0016_0F00L
let vnet_rx_bufs = 0x0016_1000L
let vnet_ring_size = 32
let vnet_buf_bytes = 64
let heap_base = 0x0020_0000L

let sys_exit = 0L
let sys_putchar = 1L
let sys_gettime = 2L
let sys_yield = 3L
let sys_nop = 4L
let sys_map = 5L
let sys_unmap = 6L
let sys_blk_read = 7L
let sys_vblk_read = 8L
let sys_tick_count = 9L
let sys_getchar = 10L
let sys_net_send = 11L
let sys_net_recv = 12L
let sys_vnet_tx = 13L
let sys_vnet_rx = 14L

let min_frames ?(vnet = false) ~user_image_bytes ~heap_pages () =
  let page = Velum_isa.Arch.page_size in
  let user_end = Int64.to_int user_base + user_image_bytes in
  let scratch_end = Int64.to_int scratch_page + page in
  let vnet_end = if vnet then Int64.to_int vnet_page + (vnet_pages * page) else 0 in
  let heap_end =
    if heap_pages > 0 then Int64.to_int heap_base + (heap_pages * page) else 0
  in
  let top =
    max
      (max user_end (max scratch_end vnet_end))
      (max heap_end (Int64.to_int kernel_region_end))
  in
  ((top + page - 1) / page) + 8
