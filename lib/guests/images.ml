open Velum_isa

type setup = {
  kernel : Asm.image;
  user : Asm.image;
  config : Kernel.config;
  frames : int;
}

let entry = Abi.kernel_base

let plan ?(pv_console = false) ?(pv_pt = false) ?hcall_ok ?(heap_pages = 0)
    ?(heap_superpages = false) ?(timer_interval = 0L) ?(vnet = false) ~user () =
  let hcall_ok =
    match hcall_ok with Some v -> v | None -> pv_console || pv_pt
  in
  let base =
    {
      Kernel.default with
      pv_console;
      pv_pt;
      hcall_ok;
      heap_pages;
      heap_superpages;
      timer_interval;
      vnet;
    }
  in
  let config = Kernel.for_user ~config:base user in
  let kernel = Kernel.build config in
  let frames =
    Abi.min_frames ~vnet ~user_image_bytes:(Bytes.length user.Asm.code)
      ~heap_pages ()
  in
  { kernel; user; config; frames }

let load_native platform setup =
  Velum_devices.Platform.load_image platform setup.kernel;
  Velum_devices.Platform.load_image platform setup.user;
  Velum_devices.Platform.boot platform ~entry

let load_vm vm setup =
  Velum_vmm.Vm.load_image vm setup.kernel;
  Velum_vmm.Vm.load_image vm setup.user
