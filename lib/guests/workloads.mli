(** User-mode guest workloads (assembled at {!Abi.user_base}).

    Each builder bakes its parameters into the program as immediates and
    ends with [sys_exit] (except {!dirty_loop}, which runs forever).
    These are the microbenchmark kernels the evaluation sweeps:

    - {!cpu_spin} — pure computation; measures basic virtualization
      overhead (should be ≈0).
    - {!syscall_loop} — back-to-back null system calls; measures the
      trap-reflection tax of trap-and-emulate.
    - {!memwalk} — walks a working set of pages; TLB-miss bound, so it
      separates shadow (1-D refill) from nested (2-D refill) paging.
    - {!pt_churn} — map/unmap a page in a loop; page-table update bound,
      so it separates shadow (trapped PTE writes) from nested (direct)
      and paravirtual (batched hypercall) page-table maintenance.
    - {!blk_read} / {!vblk_read} — storage I/O through the emulated and
      the paravirtual block device.
    - {!dirty_loop} — endless store pass over a working set with a
      tunable inter-write delay: the dirty-page generator for the live
      migration experiments.
    - {!hello} — prints a message; the quickstart smoke test. *)

open Velum_isa

val cpu_spin : iters:int64 -> Asm.image

val branch_mix : iters:int64 -> Asm.image
(** A 16-bit LFSR drives data-dependent branches between several short
    blocks each iteration — the block-chaining stress case (taken and
    fall-through edges alternate in an input-dependent order). *)

val stream_copy : words:int -> iters:int -> Asm.image
(** memcpy kernel: [iters] passes copying [words] 8-byte words from the
    bottom of the heap to a disjoint region right above it — the
    data-side translation (micro-TLB) stress case.  Requires
    [heap_pages] ≥ [2 * words / 512 + 1]. *)

val syscall_loop : count:int64 -> Asm.image

val syscall_stress : num:int64 -> count:int64 -> Asm.image
(** [count] system calls of the given number with r2 = 0 (e.g.
    [sys_gettime] to stress virtual CSR reads). *)

val memwalk : pages:int -> iters:int -> write:bool -> Asm.image
(** Requires a kernel built with [heap_pages >= pages]. *)

val pt_churn : ?batch:int -> count:int -> unit -> Asm.image
(** [count] iterations of: map [batch] pages (one syscall), store to
    each mapped page, unmap the batch (one syscall).  Larger batches
    amortize the system-call reflection cost and expose the raw
    page-table-update cost difference between paging modes. *)

val blk_read : sector:int -> count:int -> reps:int -> Asm.image
(** [reps] sequential reads of [count] sectors each into the heap
    (requires [heap_pages] ≥ the transfer size). *)

val vblk_read : sector:int -> count:int -> reps:int -> Asm.image
(** Same I/O volume through the virtio ring: each rep publishes [count]
    one-sector requests and kicks once. *)

val dirty_loop : pages:int -> delay:int -> Asm.image
(** Forever: write one word per page across [pages] heap pages, spinning
    [delay] iterations of filler between consecutive page writes. *)

val hello : ?message:string -> unit -> Asm.image

val smp_probe : Asm.image
(** Every hart writes [(hartid + 1) * 0x101] to heap slot [hartid] and
    exits — the multiprocessor-guest smoke test (requires
    [heap_pages >= 1]). *)

val echo : count:int64 -> Asm.image
(** Read [count] console input bytes (busy-polling [sys_getchar]) and
    echo each back to the console. *)

val tick_watch : ticks:int64 -> Asm.image
(** Spin until the kernel has seen [ticks] timer interrupts (requires a
    kernel built with a nonzero [timer_interval]). *)

val net_ping : message:string -> Asm.image
(** Write [message] into the heap, transmit it on the NIC, wait for a
    reply frame and print it (requires [heap_pages >= 2] and a NIC). *)

val net_echo : frames:int -> Asm.image
(** Receive [frames] frames and bounce each straight back. *)

val net_client : requests:int -> virtio_server:bool -> Asm.image
(** The request side of the application benchmark: send a sector
    number, await the 8-byte reply, [requests] times, then print 'D'
    (requires [heap_pages >= 2] and a NIC). *)

val net_server : requests:int -> virtio:bool -> Asm.image
(** The serving side: receive a sector number, read that sector from
    the emulated ([virtio = false]) or paravirtual block device, reply
    with its first 8 bytes. *)

(** {2 Virtio-net fabric workloads}

    These run on the paravirtual NIC ([Kernel.config.vnet]) behind the
    software switch.  Frames are 48 bytes of u64 fields:
    [dst; src; kind; request id; send stamp; client mac].  All three
    require [heap_pages >= 1] and announce their MAC with one broadcast
    at boot so the switch's learning table converges. *)

val vnet_client :
  my_mac:int64 ->
  lb_mac:int64 ->
  peers:int ->
  requests:int ->
  batch:int ->
  gap:int ->
  Asm.image
(** Open-loop request generator: waits (bounded) for [peers] boot
    announces so the fabric is warm, then sends [requests / batch]
    batches of [batch] stamped requests to [lb_mac], each batch staged
    with plain stores and kicked once (one VM exit per burst), draining
    replies opportunistically and spinning [gap] filler iterations
    between batches regardless of replies.  Ends with a bounded reply
    drain and exits — never hangs when link faults eat the tail of the
    replies. *)

val vnet_lb : my_mac:int64 -> backends:int64 list -> Asm.image
(** Load balancer: forwards requests round-robin across [backends] and
    routes replies back to the client MAC carried in the frame,
    batching staged descriptors and ringing one doorbell per idle
    transition.  Runs forever. *)

val vnet_backend : my_mac:int64 -> service:int -> Asm.image
(** Backend server: spins [service] iterations per request, then turns
    it into a reply to its sender.  Runs forever. *)
