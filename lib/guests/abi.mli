(** Guest software ABI: memory layout and system-call numbers shared by
    the kernel, the user workloads, and the host-side harness.

    Guest-physical layout (all regions identity-mapped once paging is
    on):
    {v
      0x0000_1000  kernel code + data          (supervisor rwx)
      0x0008_0000  kernel stack top            (grows down)
      0x0008_0000  page-table arena (bump)     (supervisor rw)
      0x000F_0000  virtio ring page            (supervisor rw)
      0x0010_0000  user program                (user rwx)
      0x0014_0000  user stack (4 pages)        (user rw)
      0x0015_0000  scratch frame for sys_map   (user rw when mapped)
      0x0016_0000  virtio-net driver area      (supervisor rw, 2 pages,
                                               vnet kernels only)
      0x0020_0000  user heap                   (user rw, cfg pages)
      0x4000_0000  device window               (supervisor rw)
    v} *)

val kernel_base : int64
val kernel_stack_top : int64
val kernel_region_end : int64
(** Identity-mapped supervisor region covers
    [0, kernel_region_end). *)

val pt_arena_base : int64
val ring_page : int64
val user_base : int64
val user_stack_base : int64
val user_stack_pages : int
val scratch_page : int64

(** {2 Virtio-net driver area} — two kernel-only pages holding the TX
    and RX descriptor rings, their status-word arrays, and the RX buffer
    pool ([vnet_ring_size] buffers of [vnet_buf_bytes]). *)

val vnet_page : int64
val vnet_pages : int
val vnet_tx_ring : int64
val vnet_rx_ring : int64
val vnet_tx_status : int64
val vnet_rx_status : int64
val vnet_rx_bufs : int64
val vnet_ring_size : int
val vnet_buf_bytes : int
val heap_base : int64

(** {1 System calls} — number in r1, args in r2.., result in r1.

    - [sys_map]: r2 = page-aligned va → maps it to the scratch frame
    - [sys_unmap]: r2 = va
    - [sys_blk_read] (emulated block device): r2 = sector, r3 = count,
      r4 = buffer va
    - [sys_vblk_read] (paravirtual block device): same arguments;
      [count] one-sector requests batched as one ring kick
    - [sys_tick_count]: timer interrupts seen so far
    - [sys_getchar]: pop one byte from the console input (0 if empty)
    - [sys_net_send]: r2 = frame buffer va, r3 = length
    - [sys_net_recv]: r2 = buffer va; returns the frame length in r1, or
      -1 when nothing is pending
    - [sys_vnet_tx] (virtio-net): r2 = frame buffer va, r3 = length
      (0 = stage nothing), r4 bit 0 = ring the doorbell; staging several
      frames and kicking once makes the whole burst cost one VM exit.
      Returns -1 when the TX ring is full
    - [sys_vnet_rx] (virtio-net): r2 = buffer va; returns the frame
      length, 0 for an errored delivery, or -1 when nothing is pending.
      Reposts the ring buffer with plain stores — no VM exit at all *)

val sys_exit : int64

val sys_putchar : int64
val sys_gettime : int64
val sys_yield : int64
val sys_nop : int64
val sys_map : int64
val sys_unmap : int64
val sys_blk_read : int64
val sys_vblk_read : int64
val sys_tick_count : int64
val sys_getchar : int64
val sys_net_send : int64
val sys_net_recv : int64
val sys_vnet_tx : int64
val sys_vnet_rx : int64

val min_frames : ?vnet:bool -> user_image_bytes:int -> heap_pages:int -> unit -> int
(** Guest frames needed for the layout above; [vnet] includes the
    virtio-net driver area. *)
