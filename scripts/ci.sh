#!/bin/sh
# Tier-1 gate: build, full test suite, and (when ocamlformat is
# available) formatting.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== fault-matrix smoke (determinism under injected faults) =="
# Identical seeds must give byte-identical behaviour: any diff below is
# nondeterminism in the fault plan, the link, or the recovery layers.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

dune exec bin/velum.exe -- migrate --faults "seed=42,drop=0.05" >"$tmp/mig1.txt"
dune exec bin/velum.exe -- migrate --faults "seed=42,drop=0.05" >"$tmp/mig2.txt"
diff "$tmp/mig1.txt" "$tmp/mig2.txt" || {
  echo "FAIL: lossy migration diverged between identical-seed runs"; exit 1; }
grep -q "retransmits" "$tmp/mig1.txt" || {
  echo "FAIL: lossy migration reported no retransmit accounting"; exit 1; }

dune exec bench/main.exe -- --quick E16 >"$tmp/e16a.txt"
cp BENCH_fault.json "$tmp/BENCH_fault.a.json"
dune exec bench/main.exe -- --quick E16 >"$tmp/e16b.txt"
diff "$tmp/BENCH_fault.a.json" BENCH_fault.json || {
  echo "FAIL: BENCH_fault.json diverged between identical-seed runs"; exit 1; }
diff "$tmp/e16a.txt" "$tmp/e16b.txt" || {
  echo "FAIL: E16 output diverged between identical-seed runs"; exit 1; }

echo "CI gate passed."
