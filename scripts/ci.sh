#!/bin/sh
# Tier-1 gate: build, full test suite, and (when ocamlformat is
# available) formatting.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== fault-matrix smoke (determinism under injected faults) =="
# Identical seeds must give byte-identical behaviour: any diff below is
# nondeterminism in the fault plan, the link, or the recovery layers.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

dune exec bin/velum.exe -- migrate --faults "seed=42,drop=0.05" >"$tmp/mig1.txt"
dune exec bin/velum.exe -- migrate --faults "seed=42,drop=0.05" >"$tmp/mig2.txt"
diff "$tmp/mig1.txt" "$tmp/mig2.txt" || {
  echo "FAIL: lossy migration diverged between identical-seed runs"; exit 1; }
grep -q "retransmits" "$tmp/mig1.txt" || {
  echo "FAIL: lossy migration reported no retransmit accounting"; exit 1; }

echo "== engine equivalence (interp vs block) =="
# The block engine must be observationally identical to the reference
# interpreter: same console bytes, same outcome, same guest/VMM cycles
# and retired-instruction counts, same per-kind exit accounting.  Only
# the engine-local statistics gauges (tlb.* / dtlb.* / engine.* lines)
# may differ — the block engine exists to skip redundant translations —
# so those are filtered out before the diff.  The virtualized legs run
# hot enough that the superblock trace tier kicks in (promotion
# threshold is a handful of dispatches), so this diff also certifies
# trace execution against the interpreter; the engine.trace.built gauge
# is checked below to prove traces really formed.
for w in hello spin syscalls memwalk pt-churn blk vblk; do
  for cfg in "--native" "--paging nested" "--paging shadow"; do
    for eng in interp block; do
      dune exec bin/velum.exe -- run -w "$w" -n 24 $cfg --engine "$eng" \
        >"$tmp/$w.$eng.raw.txt"
      grep -v -E '^(engine|tlb|dtlb)\.' <"$tmp/$w.$eng.raw.txt" >"$tmp/$w.$eng.txt"
    done
    diff "$tmp/$w.interp.txt" "$tmp/$w.block.txt" || {
      echo "FAIL: interp/block divergence on $w ($cfg)"; exit 1; }
    case "$w/$cfg" in
      spin/--paging*|syscalls/--paging*|memwalk/--paging*|pt-churn/--paging*)
        built=$(awk -F': ' '/^engine\.trace\.built/ { print $2 }' "$tmp/$w.block.raw.txt")
        [ "${built:-0}" -gt 0 ] || {
          echo "FAIL: no superblock traces formed on $w ($cfg)"; exit 1; }
        ;;
      *) ;;
    esac
  done
done

echo "== engine speedup gate (cpu-spin >= 8x, >= 60 MIPS) =="
# Re-measure the engine suite (it also re-asserts cycle/instret
# lockstep internally) and require the headline cpu-spin numbers with
# the superblock trace tier to hold; the committed BENCH_engine.json is
# restored afterwards so the gate never dirties the tree with
# machine-local wall-clock numbers.
cp BENCH_engine.json "$tmp/BENCH_engine.ref.json"
dune exec bench/main.exe -- --only ENGINE >"$tmp/engine_bench.txt"
spin=$(awk -F'"speedup": ' '/"name": "engine\/cpu-spin"/ { split($2, a, ","); print a[1] }' \
  BENCH_engine.json)
mips=$(awk -F'"block_mips": ' '/"name": "engine\/cpu-spin"/ { split($2, a, ","); print a[1] }' \
  BENCH_engine.json)
traces=$(awk -F'"trace_follows": ' '/"name": "engine\/cpu-spin"/ { split($2, a, ","); print a[1] }' \
  BENCH_engine.json)
cp "$tmp/BENCH_engine.ref.json" BENCH_engine.json
[ -n "$spin" ] || { echo "FAIL: no cpu-spin row in BENCH_engine.json"; exit 1; }
awk -v s="$spin" 'BEGIN { exit !(s + 0 >= 8.0) }' || {
  echo "FAIL: cpu-spin block-engine speedup $spin regressed below 8x"; exit 1; }
awk -v m="$mips" 'BEGIN { exit !(m + 0 >= 60.0) }' || {
  echo "FAIL: cpu-spin block-engine MIPS $mips regressed below 60"; exit 1; }
[ "${traces:-0}" -gt 0 ] || {
  echo "FAIL: cpu-spin bench ran without trace-tier dispatches"; exit 1; }
echo "cpu-spin block-engine speedup: ${spin}x at ${mips} MIPS (${traces} trace dispatches)"

cp BENCH_fault.json "$tmp/BENCH_fault.ref.json"
dune exec bench/main.exe -- --quick E16 >"$tmp/e16a.txt"
cp BENCH_fault.json "$tmp/BENCH_fault.a.json"
dune exec bench/main.exe -- --quick E16 >"$tmp/e16b.txt"
diff "$tmp/BENCH_fault.a.json" BENCH_fault.json || {
  echo "FAIL: BENCH_fault.json diverged between identical-seed runs"; exit 1; }
diff "$tmp/e16a.txt" "$tmp/e16b.txt" || {
  echo "FAIL: E16 output diverged between identical-seed runs"; exit 1; }
cp "$tmp/BENCH_fault.ref.json" BENCH_fault.json

echo "== crash-recovery matrix (EVERY power-failure offset) =="
# Cut the write stream at EVERY byte offset — of a delta commit and of
# a GC compaction — and verify each cut recovers the newest complete
# generation.  Synthetic patterned images keep the streams small enough
# to sweep exhaustively (stride 1); the commands exit nonzero on any
# torn, hybrid, or dangling-chunk recovery.
dune exec bin/velum.exe -- recover --sweep --pages 8 --stride 1 \
  >"$tmp/sweep_delta.txt" || {
  echo "FAIL: delta-commit crash sweep recovered a torn image"; exit 1; }
grep -q "0 failures" "$tmp/sweep_delta.txt" || {
  echo "FAIL: delta-commit crash sweep reported failures"; exit 1; }
dune exec bin/velum.exe -- recover --sweep --gc --pages 8 --stride 1 \
  >"$tmp/sweep_gc.txt" || {
  echo "FAIL: GC-compaction crash sweep lost a live generation"; exit 1; }
grep -q "0 failures" "$tmp/sweep_gc.txt" || {
  echo "FAIL: GC-compaction crash sweep reported failures"; exit 1; }

# A coarser lattice over a real VM snapshot delta keeps the end-to-end
# path (capture -> chunk -> commit -> recover) honest, and two
# identical-seed sweeps must report byte-identical results.
dune exec bin/velum.exe -- recover --sweep --stride 4099 >"$tmp/sweep1.txt" || {
  echo "FAIL: crash sweep recovered a torn image"; exit 1; }
dune exec bin/velum.exe -- recover --sweep --stride 4099 >"$tmp/sweep2.txt" || {
  echo "FAIL: crash sweep recovered a torn image"; exit 1; }
diff "$tmp/sweep1.txt" "$tmp/sweep2.txt" || {
  echo "FAIL: crash sweep diverged between identical runs"; exit 1; }
grep -q "0 failures" "$tmp/sweep1.txt" || {
  echo "FAIL: crash sweep reported failures"; exit 1; }

# Faulted supervised runs must also be deterministic end to end.
dune exec bin/velum.exe -- run -w spin --ha --faults "seed=7,store.torn=0.5" \
  >"$tmp/ha1.txt"
dune exec bin/velum.exe -- run -w spin --ha --faults "seed=7,store.torn=0.5" \
  >"$tmp/ha2.txt"
diff "$tmp/ha1.txt" "$tmp/ha2.txt" || {
  echo "FAIL: supervised run diverged between identical-seed runs"; exit 1; }

cp BENCH_ha.json "$tmp/BENCH_ha.ref.json"
dune exec bench/main.exe -- --quick E17 >"$tmp/e17a.txt"
cp BENCH_ha.json "$tmp/BENCH_ha.a.json"
dune exec bench/main.exe -- --quick E17 >"$tmp/e17b.txt"
diff "$tmp/BENCH_ha.a.json" BENCH_ha.json || {
  echo "FAIL: BENCH_ha.json diverged between identical-seed runs"; exit 1; }
diff "$tmp/e17a.txt" "$tmp/e17b.txt" || {
  echo "FAIL: E17 output diverged between identical-seed runs"; exit 1; }
cp "$tmp/BENCH_ha.ref.json" BENCH_ha.json

# The committed BENCH_ha.json must carry the incremental-store columns
# and show a checkpoint pause tax under 20% at the 100k-cycle cadence —
# the delta commits are the point of the content-addressed store.
grep -q '"name": "ha/crash_sweep_gc"' BENCH_ha.json || {
  echo "FAIL: BENCH_ha.json missing the GC crash-sweep row"; exit 1; }
grep -q '"dedup_ratio"' BENCH_ha.json || {
  echo "FAIL: BENCH_ha.json missing the dedup_ratio column"; exit 1; }
grep -q '"bytes_written"' BENCH_ha.json || {
  echo "FAIL: BENCH_ha.json missing the bytes_written column"; exit 1; }
overhead=$(awk -F'"checkpoint_overhead": ' '/"name": "ha\/supervisor\/cadence_100000"/ \
  { split($2, a, "}"); print a[1] }' BENCH_ha.json)
[ -n "$overhead" ] || {
  echo "FAIL: BENCH_ha.json missing the cadence_100000 row"; exit 1; }
awk -v o="$overhead" 'BEGIN { exit !(o + 0 < 0.20) }' || {
  echo "FAIL: cadence_100000 checkpoint overhead $overhead >= 0.20"; exit 1; }
echo "cadence_100000 checkpoint overhead: $overhead"

# E22's BENCH_store.json is all deterministic byte counts (no wall
# clock), so the regenerated file must match the committed one exactly.
cp BENCH_store.json "$tmp/BENCH_store.ref.json"
dune exec bench/main.exe -- --only E22 >"$tmp/e22.txt"
diff "$tmp/BENCH_store.ref.json" BENCH_store.json || {
  echo "FAIL: BENCH_store.json diverged from the committed copy"; exit 1; }

echo "== trace determinism and zero-overhead gate =="
# Tracing is host-side observation only: two identical seeded runs must
# export byte-identical JSONL, and a traced run must print exactly the
# same simulated results (cycles, exits, console) as an untraced one.
dune exec bin/velum.exe -- run -w syscalls -n 64 --trace="$tmp/t1.jsonl" \
  >"$tmp/traced1.txt"
dune exec bin/velum.exe -- run -w syscalls -n 64 --trace="$tmp/t2.jsonl" \
  >"$tmp/traced2.txt"
diff "$tmp/t1.jsonl" "$tmp/t2.jsonl" || {
  echo "FAIL: trace export diverged between identical-seed runs"; exit 1; }
dune exec bin/velum.exe -- run -w syscalls -n 64 >"$tmp/untraced.txt"
grep -v '^trace:' "$tmp/traced1.txt" >"$tmp/traced1.filtered.txt"
diff "$tmp/untraced.txt" "$tmp/traced1.filtered.txt" || {
  echo "FAIL: tracing changed simulated behaviour (cycles or exits)"; exit 1; }
dune exec bin/velum.exe -- trace "$tmp/t1.jsonl" >"$tmp/report.txt"
grep -q "cycle attribution" "$tmp/report.txt" || {
  echo "FAIL: trace report missing attribution table"; exit 1; }
grep -q "p99" "$tmp/report.txt" || {
  echo "FAIL: trace report missing latency percentiles"; exit 1; }

echo "== parallel hosts: domain-count invariance (round barrier) =="
# The acceptance gate for the cluster runner: a 4-host fleet executed on
# 4 domains must print a byte-identical report (simulated cycles, exits,
# monitor counters, heartbeats, link state) to the same fleet on 1
# domain, and per-host trace exports must match byte for byte.
dune exec bin/velum.exe -- run -w syscalls -n 200 --hosts 4 --domains 1 \
  --rounds 6 --trace "$tmp/par1.jsonl" >"$tmp/par1.txt"
dune exec bin/velum.exe -- run -w syscalls -n 200 --hosts 4 --domains 4 \
  --rounds 6 --trace "$tmp/par4.jsonl" >"$tmp/par4.txt"
diff "$tmp/par1.txt" "$tmp/par4.txt" || {
  echo "FAIL: fleet report diverged between 1 and 4 domains"; exit 1; }
for i in 0 1 2 3; do
  diff "$tmp/par1.jsonl.$i" "$tmp/par4.jsonl.$i" || {
    echo "FAIL: host $i trace export diverged between 1 and 4 domains"; exit 1; }
done
grep -q "hb_sent" "$tmp/par1.txt" || {
  echo "FAIL: fleet report carries no heartbeat accounting"; exit 1; }

# And under chaos: faults on every link, a mid-run host failure and
# periodic live migrations at the barrier must stay domain-invariant.
chaos="--hosts 4 --rounds 8 --migrate-every 3 --fail-host 4,2 \
  --faults seed=9,drop=0.1,corrupt=0.05,hb.loss=0.2 --seed 31"
dune exec bin/velum.exe -- run -w dirty -n 16 $chaos --domains 1 >"$tmp/chaos1.txt"
dune exec bin/velum.exe -- run -w dirty -n 16 $chaos --domains 4 >"$tmp/chaos4.txt"
diff "$tmp/chaos1.txt" "$tmp/chaos4.txt" || {
  echo "FAIL: chaotic fleet diverged between 1 and 4 domains"; exit 1; }
grep -q "pred_dead=round" "$tmp/chaos1.txt" || {
  echo "FAIL: injected host failure was never detected"; exit 1; }
grep -q "migrations=" "$tmp/chaos1.txt" || {
  echo "FAIL: fleet report carries no migration accounting"; exit 1; }

# BENCH_par.json is regenerated by 'bench/main.exe --only E19' (wall
# clock is machine-local, so the committed file is not re-checked for
# equality — only for shape).
grep -q '"name": "par/domains-4"' BENCH_par.json || {
  echo "FAIL: BENCH_par.json missing the 4-domain row"; exit 1; }

echo "== cluster control plane: chaos determinism and availability gate =="
# The self-healing control plane under scripted chaos — two host kills,
# a rolling drain, an overload burst, plus heartbeat/evacuation/drain
# faults — must print a byte-identical report at 4 domains vs 1, keep
# fleet availability >= 0.95, and record zero split-brain epochs.
cchaos="--hosts 16 --kill 5,1 --kill 8,9 --burst 6 --drain 12,3 --rounds 24 \
  --seed 11 --faults seed=7,cluster.hb=0.05,cluster.evac=0.1,cluster.drain=0.1,drop=0.02"
dune exec bin/velum.exe -- cluster $cchaos --domains 1 >"$tmp/cluster1.txt"
dune exec bin/velum.exe -- cluster $cchaos --domains 4 >"$tmp/cluster4.txt"
diff "$tmp/cluster1.txt" "$tmp/cluster4.txt" || {
  echo "FAIL: cluster report diverged between 1 and 4 domains"; exit 1; }
avail=$(sed -n 's/^metrics availability=\([0-9.]*\).*/\1/p' "$tmp/cluster1.txt")
[ -n "$avail" ] || { echo "FAIL: cluster report carries no availability metric"; exit 1; }
awk -v a="$avail" 'BEGIN { exit !(a + 0 >= 0.95) }' || {
  echo "FAIL: fleet availability $avail below the 0.95 gate"; exit 1; }
echo "fleet availability under chaos: $avail"
grep -q "split_brain=0" "$tmp/cluster1.txt" || {
  echo "FAIL: split-brain epoch observed"; exit 1; }
grep -q "state=shed" "$tmp/cluster1.txt" || {
  echo "FAIL: overload burst shed nothing"; exit 1; }

# E20's BENCH_cluster.json is all simulated metrics (no wall clock), so
# the regenerated file must be byte-identical to the committed one.
cp BENCH_cluster.json "$tmp/BENCH_cluster.ref.json"
dune exec bench/main.exe -- --only E20 >"$tmp/e20.txt"
diff "$tmp/BENCH_cluster.ref.json" BENCH_cluster.json || {
  echo "FAIL: BENCH_cluster.json diverged from the committed copy"; exit 1; }

echo "== network fabric: domain invariance, tail latency, conservation =="
# A switched virtio-net fleet (LB fan-out over backends, open-loop
# clients) under link faults must print a byte-identical report and
# per-host latency digest at 4 domains vs 1.  'velum net' fails hard on
# any conservation violation, so a clean diff also certifies that every
# frame landed in a named counter on both runs.
nfab="--hosts 2 --requests 16 \
  --faults seed=9,drop=0.02,corrupt=0.01,delay=0.05,dup=0.01"
dune exec bin/velum.exe -- net $nfab --domains 1 >"$tmp/net1.txt"
dune exec bin/velum.exe -- net $nfab --domains 4 >"$tmp/net4.txt"
diff "$tmp/net1.txt" "$tmp/net4.txt" || {
  echo "FAIL: net fabric diverged between 1 and 4 domains"; exit 1; }
p50=$(sed -n 's/^fabric: .*p50=\([0-9.]*\).*/\1/p' "$tmp/net1.txt")
p99=$(sed -n 's/^fabric: .*p99=\([0-9.]*\).*/\1/p' "$tmp/net1.txt")
[ -n "$p99" ] || { echo "FAIL: net fabric printed no p99"; exit 1; }
awk -v a="$p50" -v b="$p99" 'BEGIN { exit !(b + 0 >= a + 0 && b + 0 > 0) }' || {
  echo "FAIL: nonsensical fabric percentiles (p50=$p50 p99=$p99)"; exit 1; }
echo "fabric p99 under link faults: $p99 cycles"
grep -q "net.kicks" "$tmp/net1.txt" || {
  echo "FAIL: fleet report carries no net.* gauges"; exit 1; }

# E23's BENCH_net.json is all simulated counters and percentiles (no
# wall clock), so the regenerated file must match the committed copy
# byte for byte; E23 itself asserts 1-vs-4-domain byte identity, frame
# conservation, and reply completeness across a mid-benchmark live
# migration of a backend.
cp BENCH_net.json "$tmp/BENCH_net.ref.json"
dune exec bench/main.exe -- --only E23 >"$tmp/e23.txt"
diff "$tmp/BENCH_net.ref.json" BENCH_net.json || {
  echo "FAIL: BENCH_net.json diverged from the committed copy"; exit 1; }

echo "CI gate passed."
