#!/bin/sh
# Tier-1 gate: build, full test suite, and (when ocamlformat is
# available) formatting.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "CI gate passed."
